"""Searching for sinks (and the core) inside a knowledge view.

The predicates in :mod:`repro.graphs.predicates` *check* whether a given set
of processes is a sink.  The online Sink and Core algorithms, the static
oracle and the extended-OSR checker additionally need to *find* candidate
sets.  Exhaustive enumeration of all subsets is exponential, so the search
below combines:

* **SCC seeding** -- the natural candidates are the sink strongly connected
  components of the graph induced by the received PDs (the proof of
  Theorem 3 constructs ``S1`` from exactly such a component), optionally
  with up to ``f`` members removed (Byzantine processes may advertise PDs
  that merge them into, or out of, the component);
* **bounded exhaustive enumeration** -- for small views (the paper's figures
  have 7-9 processes) every subset is tried, which both guarantees
  completeness in tests and serves as a reference implementation for the
  heuristic search.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.graphs.components import sink_components, strongly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId
from repro.graphs.predicates import (
    KnowledgeView,
    SinkWitness,
    derived_s2,
    is_sink_gdi,
    sink_star_witness,
)
from repro.graphs.search_memo import SinkSearchMemo, sink_search_memo

#: Views with at most this many received processes are searched exhaustively.
DEFAULT_EXHAUSTIVE_LIMIT = 12

#: Safety valve for the combinatorial parts of the heuristic search.
DEFAULT_MAX_SUBSETS = 50_000


@dataclass(frozen=True, slots=True)
class SearchOptions:
    """Tuning knobs shared by every sink-search entry point."""

    strict_p3: bool = False
    bound_s2: bool = True
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT
    max_subsets: int = DEFAULT_MAX_SUBSETS


def _received_graph(view: KnowledgeView) -> KnowledgeGraph:
    """Graph over the received processes, using the received (claimed) PDs."""
    return view.induced_graph(view.received)


def _candidate_s1_sets(view: KnowledgeView, options: SearchOptions) -> Iterator[frozenset[ProcessId]]:
    """Yield candidate ``S1`` sets, most promising first, without duplicates.

    Candidates are the sink SCCs of the received-PD graph, those components
    with small subsets removed (to shake off Byzantine processes whose
    claimed PDs merged them into the component), unions of sink SCCs with
    other components that only point into them, and -- for small views --
    every subset of the received processes.
    """
    seen: set[frozenset[ProcessId]] = set()

    def emit(candidate: frozenset[ProcessId]) -> Iterator[frozenset[ProcessId]]:
        if candidate and candidate not in seen:
            seen.add(candidate)
            yield candidate

    # The SCC decomposition only depends on the received processes and their
    # PDs restricted to them, so it is memoised by content: converging views
    # re-derive identical received graphs over and over, and the component
    # algorithms are deterministic (sorted successor/root order), so a hit
    # replays the exact components (including their order).
    received = view.received
    memo = sink_search_memo()
    scc_key = ("scc", frozenset((node, pd & received) for node, pd in view.pds.items()))
    cached = memo.lookup(scc_key)
    if cached is not SinkSearchMemo._MISS:
        components, sinks = cached
    else:
        received_graph = _received_graph(view)
        components = tuple(strongly_connected_components(received_graph))
        sinks = tuple(sink_components(received_graph))
        memo.store(scc_key, (components, sinks))

    # 1. Sink SCCs of the received graph and their unions with components
    #    that are "absorbed" by them (every outgoing edge points into them).
    for component in sorted(sinks, key=len, reverse=True):
        yield from emit(component)
    for component in sorted(components, key=len, reverse=True):
        yield from emit(component)

    # 2. Sink SCCs with up to a few members removed.  A Byzantine process can
    #    claim a PD that merges it with the genuine sink component; removing
    #    it restores a candidate whose connectivity is computable.
    budget = options.max_subsets
    for component in sorted(sinks, key=len, reverse=True):
        members = sorted(component, key=repr)
        max_removed = min(len(members) - 1, 3)
        for removed_size in range(1, max_removed + 1):
            for removed in combinations(members, removed_size):
                budget -= 1
                if budget <= 0:
                    break
                yield from emit(component - frozenset(removed))
            if budget <= 0:
                break
        if budget <= 0:
            break

    # 3. Bounded exhaustive enumeration for small views (reference search).
    received = sorted(view.received, key=repr)
    if len(received) <= options.exhaustive_limit:
        for size in range(len(received), 0, -1):
            for subset in combinations(received, size):
                yield from emit(frozenset(subset))


def find_sink_with_fault_threshold(
    view: KnowledgeView,
    f: int,
    options: SearchOptions | None = None,
) -> SinkWitness | None:
    """Line 3 of Algorithm 2: find ``S1, S2`` with ``isSinkGdi(f, S1, S2)``.

    Returns a witness (whose ``members`` are ``S1 ∪ S2``, i.e. the sink the
    algorithm returns) or ``None`` when the current view does not yet allow
    the sink to be identified.
    """
    options = options or SearchOptions()
    for s1 in _candidate_s1_sets(view, options):
        if len(s1) < 2 * f + 1:
            continue
        s2 = derived_s2(view, f, s1)
        if is_sink_gdi(view, f, s1, s2, strict_p3=options.strict_p3, bound_s2=options.bound_s2):
            return SinkWitness(members=s1 | s2, s1=s1, s2=s2, f=f)
    return None


def find_all_sinks(
    view: KnowledgeView,
    options: SearchOptions | None = None,
    minimum_f: int = 0,
) -> list[SinkWitness]:
    """Return every distinct sink* set discoverable from the view.

    For each candidate ``S1`` and each fault value ``g`` (from large to
    small), the derived ``S2`` is computed and the predicate checked; each
    distinct member set is reported once, with the witness realising its
    maximum ``g`` (i.e. ``f_Gdi``).
    """
    options = options or SearchOptions()
    witnesses: dict[frozenset[ProcessId], SinkWitness] = {}
    for s1 in _candidate_s1_sets(view, options):
        max_g = (len(s1) - 1) // 2
        for g in range(max_g, minimum_f - 1, -1):
            s2 = derived_s2(view, g, s1)
            if options.bound_s2 and len(s2) > g:
                continue
            if not is_sink_gdi(view, g, s1, s2, strict_p3=options.strict_p3, bound_s2=options.bound_s2):
                continue
            members = s1 | s2
            existing = witnesses.get(members)
            if existing is None or g > existing.f:
                witnesses[members] = SinkWitness(members=members, s1=s1, s2=s2, f=g)
    return sorted(witnesses.values(), key=lambda w: (-w.f, -len(w.members), sorted(map(repr, w.members))))


def strongest_sinks(
    view: KnowledgeView,
    options: SearchOptions | None = None,
) -> list[SinkWitness]:
    """Return the sinks with maximal connectivity among all discoverable sinks."""
    witnesses = find_all_sinks(view, options)
    if not witnesses:
        return []
    best = witnesses[0].f
    return [witness for witness in witnesses if witness.f == best]


def has_stronger_subsink(
    view: KnowledgeView,
    members: Iterable[ProcessId],
    connectivity: int,
    options: SearchOptions | None = None,
) -> bool:
    """Theorem 8(b): is there ``V ⊂ members`` with ``isSink*(V)`` and ``k_Gdi(V) >= connectivity``?

    Only proper subsets are considered.  A subset with connectivity
    ``connectivity`` needs at least ``2*connectivity - 1`` processes, so the
    enumeration is restricted to subsets whose size lies in
    ``[2*connectivity - 1, |members| - 1]``.
    """
    options = options or SearchOptions()
    member_set = frozenset(members)
    subview = view.subview(member_set)
    # The scan is a pure function of the member set, the restricted view
    # content and the options; every predicate below only reads the PDs
    # intersected with the member set, so restricting the PDs in the key
    # maximises sharing without changing any result.  The core locator
    # re-runs this scan on every view change until the core is found, and
    # typically only the PDs *outside* the tentative core changed -- making
    # this the single most profitable memoisation point of the core path.
    memo = sink_search_memo()
    key = (
        "subsink",
        connectivity,
        options,
        member_set,
        frozenset(subview.known),
        frozenset((node, pd & member_set) for node, pd in subview.pds.items()),
    )
    cached = memo.lookup(key)
    if cached is not SinkSearchMemo._MISS:
        return cached
    result = _has_stronger_subsink_scan(subview, member_set, connectivity, options)
    memo.store(key, result)
    return result


def _has_stronger_subsink_scan(
    subview: KnowledgeView,
    member_set: frozenset[ProcessId],
    connectivity: int,
    options: SearchOptions,
) -> bool:
    minimum_size = max(1, 2 * connectivity - 1)
    ordered = sorted(member_set, key=repr)
    examined = 0
    for size in range(len(member_set) - 1, minimum_size - 1, -1):
        for subset in combinations(ordered, size):
            examined += 1
            if examined > options.max_subsets:
                return False
            witness = sink_star_witness(
                subview,
                subset,
                strict_p3=options.strict_p3,
                bound_s2=options.bound_s2,
                minimum_f=connectivity - 1,
            )
            if witness is not None and witness.connectivity >= connectivity:
                return True
    return False


@dataclass(frozen=True, slots=True)
class CoreWitness:
    """A core identification: the sink witness plus the connectivity used."""

    witness: SinkWitness

    @property
    def members(self) -> frozenset[ProcessId]:
        return self.witness.members

    @property
    def connectivity(self) -> int:
        return self.witness.connectivity

    @property
    def estimated_f(self) -> int:
        """The fault-threshold estimate ``f_Gdi`` derived from the core."""
        return self.witness.f


def find_core_candidate(
    view: KnowledgeView,
    options: SearchOptions | None = None,
) -> CoreWitness | None:
    """Line 2 of Algorithm 4 (as clarified in DESIGN.md).

    Returns a core witness when the current view contains a sink ``S`` such
    that (a) ``S`` has the strictly maximal connectivity among every sink
    discoverable from the view and (b) no proper subset of ``S`` is a sink
    with connectivity ``>= k_Gdi(S)``.  Returns ``None`` otherwise (the
    caller keeps discovering).
    """
    options = options or SearchOptions()
    best = strongest_sinks(view, options)
    if len(best) != 1:
        # No sink at all, or a tie: the core (which must be strictly the
        # strongest, Property C1) cannot be identified yet.
        return None
    witness = best[0]
    if has_stronger_subsink(view, witness.members, witness.connectivity, options):
        return None
    return CoreWitness(witness=witness)


__all__ = [
    "SearchOptions",
    "CoreWitness",
    "find_sink_with_fault_threshold",
    "find_all_sinks",
    "strongest_sinks",
    "has_stronger_subsink",
    "find_core_candidate",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "DEFAULT_MAX_SUBSETS",
]
