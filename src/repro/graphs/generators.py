"""Random generators for knowledge connectivity graph families.

The generators construct graphs *by design* to satisfy (or violate) the
BFT-CUP / BFT-CUPFT requirements, so they can be used as workloads at sizes
where exhaustive verification would be too slow.  For small sizes the test
suite cross-checks the generated graphs against the exact checkers.

All generators are deterministic given a ``random.Random`` seed, which keeps
simulations and benchmarks reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Literal

from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId

FaultPlacement = Literal["sink", "non_sink", "mixed", "none"]

#: How the optional extra edges of the non-sink/non-core layer are sampled.
#:
#: ``"pairwise"`` draws one rng value per (member, earlier) pair — quadratic
#: in the layer size, but those draws are semantically part of the graph
#: family, so it stays the default: every existing seed reproduces its graph
#: byte-identically.  ``"skip"`` draws geometric gaps between successive
#: included edges (O(1 + p·k) draws per member), producing the same edge
#: distribution from a *different* rng stream — use it for large sparse
#: layers where the pairwise loop dominates generation time.
ExtraEdgeSampling = Literal["pairwise", "skip"]


def _sampled_indices(rng: random.Random, probability: float, count: int):
    """Yield each index in ``range(count)`` independently with ``probability``.

    Geometric skip sampling: instead of one Bernoulli draw per index, draw
    the gap to the next success directly (``floor(log(1-u) / log(1-p))``),
    so the expected number of rng draws is ``1 + p * count``.
    """
    if count <= 0:
        return
    if probability >= 1.0:
        yield from range(count)
        return
    log_failure = math.log1p(-probability)
    index = -1
    while True:
        u = rng.random()
        # u == 0.0 would need log(1) / log(1-p) = 0 skipped failures.
        gap = int(math.log1p(-u) / log_failure) if u > 0.0 else 0
        index += gap + 1
        if index >= count:
            return
        yield index


def _extra_layer_edges(
    graph: KnowledgeGraph,
    rng: random.Random,
    members: list[ProcessId],
    position: int,
    probability: float,
    sampling: ExtraEdgeSampling,
) -> None:
    """Add the optional acyclic forward edges for ``members[position]``."""
    member = members[position]
    if sampling == "skip":
        for earlier_index in _sampled_indices(rng, probability, position):
            graph.add_edge(member, members[earlier_index])
        return
    if sampling != "pairwise":
        raise ValueError(f"unknown extra_edge_sampling {sampling!r}")
    for earlier in members[:position]:
        if rng.random() < probability:
            graph.add_edge(member, earlier)


@dataclass(frozen=True)
class GeneratedScenario:
    """A generated knowledge connectivity graph plus its ground truth."""

    name: str
    graph: KnowledgeGraph
    faulty: frozenset[ProcessId]
    fault_threshold: int
    sink_of_safe_graph: frozenset[ProcessId]
    core_of_safe_graph: frozenset[ProcessId]
    parameters: dict[str, object] = field(default_factory=dict)

    @property
    def correct(self) -> frozenset[ProcessId]:
        return frozenset(self.graph.processes - self.faulty)


def _circulant_edges(members: list[ProcessId], degree: int) -> list[tuple[ProcessId, ProcessId]]:
    """Directed circulant: each member points to the next ``degree`` members.

    A circulant digraph with out-degree ``degree`` is ``degree``-strongly
    connected, which gives precise control over the sink's connectivity.
    """
    edges = []
    count = len(members)
    for position, member in enumerate(members):
        for offset in range(1, degree + 1):
            edges.append((member, members[(position + offset) % count]))
    return edges


def _complete_edges(members: list[ProcessId]) -> list[tuple[ProcessId, ProcessId]]:
    return [(a, b) for a in members for b in members if a != b]


def generate_bft_cup_graph(
    *,
    f: int,
    sink_size: int | None = None,
    non_sink_size: int = 4,
    byzantine_placement: FaultPlacement = "sink",
    byzantine_count: int | None = None,
    extra_edge_probability: float = 0.1,
    extra_edge_sampling: ExtraEdgeSampling = "pairwise",
    dense_sink: bool = False,
    seed: int = 0,
) -> GeneratedScenario:
    """Generate a graph satisfying the BFT-CUP requirements (Theorem 1).

    Construction:

    * the correct sink is a circulant (or complete, with ``dense_sink``) on
      ``sink_size`` processes with out-degree ``f + 1``, hence
      ``(f+1)``-strongly connected;
    * every correct non-sink process points to ``f + 1`` distinct sink
      members chosen at random (plus optional extra edges towards other
      non-sink processes with smaller index, keeping the non-sink part
      acyclic), which yields at least ``f + 1`` node-disjoint paths to every
      sink member by the fan lemma;
    * Byzantine processes are attached according to ``byzantine_placement``:
      ``"sink"`` processes are known by at least ``f + 1`` sink members (so
      the online algorithms include them in the returned sink via ``S2``),
      ``"non_sink"`` processes only know/are known like non-sink members,
      and ``"mixed"`` alternates.
    """
    rng = random.Random(seed)
    if f < 0:
        raise ValueError("f must be non-negative")
    sink_size = sink_size if sink_size is not None else 2 * f + 1
    if sink_size < 2 * f + 1:
        raise ValueError("the sink must contain at least 2f + 1 correct processes")
    byzantine_count = f if byzantine_count is None else byzantine_count
    if byzantine_count > f:
        raise ValueError("cannot place more than f Byzantine processes")
    if byzantine_placement == "none":
        byzantine_count = 0

    sink_members: list[int] = list(range(1, sink_size + 1))
    non_sink_members: list[int] = list(range(sink_size + 1, sink_size + non_sink_size + 1))
    byzantine_members: list[int] = list(
        range(sink_size + non_sink_size + 1, sink_size + non_sink_size + byzantine_count + 1)
    )

    graph = KnowledgeGraph()
    for node in sink_members + non_sink_members + byzantine_members:
        graph.add_process(node)

    if dense_sink or sink_size <= f + 1:
        graph.add_edges(_complete_edges(sink_members))
    else:
        graph.add_edges(_circulant_edges(sink_members, f + 1))

    # Correct non-sink processes: f+1 direct edges into the sink, optional
    # forward edges among non-sink processes (kept acyclic by index order).
    for position, member in enumerate(non_sink_members):
        targets = rng.sample(sink_members, min(f + 1, len(sink_members)))
        for target in targets:
            graph.add_edge(member, target)
        # With probability 0 no extra edge can appear, so the draws are
        # skipped entirely; with "skip" sampling the expected draw count is
        # linear in the edges actually added (see ExtraEdgeSampling for why
        # the quadratic pairwise stream stays the default).
        if extra_edge_probability > 0.0:
            _extra_layer_edges(
                graph, rng, non_sink_members, position, extra_edge_probability, extra_edge_sampling
            )

    # Byzantine processes.
    placements: list[str] = []
    for index in range(byzantine_count):
        if byzantine_placement == "mixed":
            placements.append("sink" if index % 2 == 0 else "non_sink")
        else:
            placements.append(byzantine_placement)
    for member, placement in zip(byzantine_members, placements, strict=True):
        if placement == "sink":
            # Known by every correct sink member and pointing back, as in
            # Fig. 1b.  Attaching it with only f+1 knowers (the minimum of
            # Scenario I) is not enough: a correct process whose witness set
            # S1 misses some of those knowers would not place the Byzantine
            # process in S2, so different correct processes could return
            # sink sets differing in their Byzantine members (see DESIGN.md).
            for knower in sink_members:
                graph.add_edge(knower, member)
            for target in rng.sample(sink_members, min(f + 1, len(sink_members))):
                graph.add_edge(member, target)
        else:
            for target in rng.sample(sink_members, min(f + 1, len(sink_members))):
                graph.add_edge(member, target)
            if non_sink_members and rng.random() < 0.5:
                graph.add_edge(rng.choice(non_sink_members), member)

    faulty = frozenset(byzantine_members)
    return GeneratedScenario(
        name=f"bft_cup(f={f},sink={sink_size},non_sink={non_sink_size},seed={seed})",
        graph=graph,
        faulty=faulty,
        fault_threshold=f,
        sink_of_safe_graph=frozenset(sink_members),
        core_of_safe_graph=frozenset(sink_members) if sink_size == 2 * f + 1 else frozenset(),
        parameters={
            "f": f,
            "sink_size": sink_size,
            "non_sink_size": non_sink_size,
            "byzantine_placement": byzantine_placement,
            "byzantine_count": byzantine_count,
            "seed": seed,
            "dense_sink": dense_sink,
            # Recorded only when non-default so existing parameter dicts
            # (and anything hashed from them) stay byte-identical.
            **(
                {"extra_edge_sampling": extra_edge_sampling}
                if extra_edge_sampling != "pairwise"
                else {}
            ),
        },
    )


def generate_bft_cupft_graph(
    *,
    f: int,
    core_size: int | None = None,
    non_core_size: int = 4,
    byzantine_placement: FaultPlacement = "sink",
    byzantine_count: int | None = None,
    extra_edge_probability: float = 0.1,
    extra_edge_sampling: ExtraEdgeSampling = "pairwise",
    seed: int = 0,
) -> GeneratedScenario:
    """Generate a graph satisfying the BFT-CUPFT requirements (Section V).

    Construction: the correct core is a *complete* digraph on
    ``core_size = 2f + 1`` processes, so its connectivity ``k_Gdi`` equals
    ``f + 1`` and no proper subset can reach that connectivity (a set needs
    at least ``2f + 1`` members for ``f_Gdi = f``).  Correct non-core
    processes form an acyclic layer pointing to at least ``f + 1`` distinct
    core members each, so (a) they cannot form competing sinks (every subset
    containing one of them has a member with no in-edges inside the subset)
    and (b) Property C2 holds through the fan lemma.  Byzantine processes
    are attached as in :func:`generate_bft_cup_graph`.
    """
    rng = random.Random(seed)
    if f < 0:
        raise ValueError("f must be non-negative")
    core_size = core_size if core_size is not None else 2 * f + 1
    if core_size != 2 * f + 1:
        raise ValueError(
            "this generator pins the core size to 2f + 1 so the core is provably the unique "
            "strongest sink; use generate_bft_cup_graph for larger sinks"
        )
    byzantine_count = f if byzantine_count is None else byzantine_count
    if byzantine_count > f:
        raise ValueError("cannot place more than f Byzantine processes")
    if byzantine_placement == "none":
        byzantine_count = 0

    core_members: list[int] = list(range(1, core_size + 1))
    non_core_members: list[int] = list(range(core_size + 1, core_size + non_core_size + 1))
    byzantine_members: list[int] = list(
        range(core_size + non_core_size + 1, core_size + non_core_size + byzantine_count + 1)
    )

    graph = KnowledgeGraph()
    for node in core_members + non_core_members + byzantine_members:
        graph.add_process(node)
    graph.add_edges(_complete_edges(core_members))

    for position, member in enumerate(non_core_members):
        targets = rng.sample(core_members, min(f + 1, len(core_members)))
        for target in targets:
            graph.add_edge(member, target)
        # Same fast paths as in generate_bft_cup_graph: zero probability
        # skips the draws, "skip" sampling makes them linear in the layer.
        if extra_edge_probability > 0.0:
            _extra_layer_edges(
                graph, rng, non_core_members, position, extra_edge_probability, extra_edge_sampling
            )

    placements: list[str] = []
    for index in range(byzantine_count):
        if byzantine_placement == "mixed":
            placements.append("sink" if index % 2 == 0 else "non_sink")
        else:
            placements.append("sink" if byzantine_placement == "sink" else "non_sink")
    for member, placement in zip(byzantine_members, placements, strict=True):
        if placement == "sink":
            # Known by every correct core member (see the comment in
            # generate_bft_cup_graph for why f+1 knowers are not enough).
            for knower in core_members:
                graph.add_edge(knower, member)
            for target in rng.sample(core_members, min(f + 1, len(core_members))):
                graph.add_edge(member, target)
        else:
            for target in rng.sample(core_members, min(f + 1, len(core_members))):
                graph.add_edge(member, target)

    faulty = frozenset(byzantine_members)
    return GeneratedScenario(
        name=f"bft_cupft(f={f},core={core_size},non_core={non_core_size},seed={seed})",
        graph=graph,
        faulty=faulty,
        fault_threshold=f,
        sink_of_safe_graph=frozenset(core_members),
        core_of_safe_graph=frozenset(core_members),
        parameters={
            "f": f,
            "core_size": core_size,
            "non_core_size": non_core_size,
            "byzantine_placement": byzantine_placement,
            "byzantine_count": byzantine_count,
            "seed": seed,
            **(
                {"extra_edge_sampling": extra_edge_sampling}
                if extra_edge_sampling != "pairwise"
                else {}
            ),
        },
    )


def generate_split_brain_graph(*, group_size: int = 4, seed: int = 0) -> GeneratedScenario:
    """Generate a Fig. 2c-style graph: two cliques joined by a single bridge.

    The graph satisfies the BFT-CUP requirements only for ``f = 0`` and is
    *not* extended k-OSR for any useful ``k``: both cliques are sinks of the
    same connectivity, so no core exists.  Used by the impossibility
    experiments.
    """
    if group_size < 2:
        raise ValueError("each group needs at least two processes")
    del seed  # deterministic; kept for interface uniformity
    group_a = list(range(1, group_size + 1))
    group_b = list(range(group_size + 1, 2 * group_size + 1))
    graph = KnowledgeGraph()
    graph.add_edges(_complete_edges(group_a))
    graph.add_edges(_complete_edges(group_b))
    graph.add_edge(group_a[-1], group_b[0])
    graph.add_edge(group_b[0], group_a[-1])
    return GeneratedScenario(
        name=f"split_brain(group={group_size})",
        graph=graph,
        faulty=frozenset(),
        fault_threshold=0,
        sink_of_safe_graph=frozenset(group_a + group_b),
        core_of_safe_graph=frozenset(),
        parameters={"group_size": group_size},
    )


def generate_random_digraph(
    *,
    size: int,
    edge_probability: float = 0.3,
    seed: int = 0,
) -> KnowledgeGraph:
    """Generate an Erdos-Renyi style random digraph (no structural guarantees).

    Used by property-based tests to cross-check the graph algorithms against
    networkx, and as a source of graphs that usually violate the model
    requirements.
    """
    rng = random.Random(seed)
    graph = KnowledgeGraph()
    nodes = list(range(1, size + 1))
    for node in nodes:
        graph.add_process(node)
    for source in nodes:
        for target in nodes:
            if source != target and rng.random() < edge_probability:
                graph.add_edge(source, target)
    return graph


__all__ = [
    "FaultPlacement",
    "GeneratedScenario",
    "generate_bft_cup_graph",
    "generate_bft_cupft_graph",
    "generate_split_brain_graph",
    "generate_random_digraph",
]
