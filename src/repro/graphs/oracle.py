"""A static (omniscient) oracle over a knowledge connectivity graph.

The oracle computes, from the full graph, every quantity the online
protocols compute from partial views: the sink members, the core, the
fault-threshold estimate, and the per-process reachability facts used by the
Discovery algorithm's correctness proof (Theorem 2).  It is used throughout
the test suite to validate that the distributed algorithms converge to the
same answers, and by the workload builders to place faults consistently.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import cached_property

from repro.graphs.components import sink_components, sink_members
from repro.graphs.extended_osr import find_core
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId
from repro.graphs.osr import max_osr_k
from repro.graphs.predicates import KnowledgeView, SinkWitness, f_gdi, k_gdi
from repro.graphs.sink_search import SearchOptions


@dataclass
class StaticOracle:
    """Omniscient analysis of a knowledge connectivity graph.

    Parameters
    ----------
    graph:
        The full knowledge connectivity graph ``Gdi``.
    faulty:
        The set of faulty processes ``Π_F`` (may be empty).  Quantities with
        a ``safe_`` prefix are computed on ``Gsafe = Gdi[Π_C]``.
    options:
        Search options forwarded to the sink/core searches.
    """

    graph: KnowledgeGraph
    faulty: frozenset[ProcessId] = frozenset()
    options: SearchOptions | None = None

    def __post_init__(self) -> None:
        self.faulty = frozenset(self.faulty)
        unknown = self.faulty - self.graph.processes
        if unknown:
            raise ValueError(f"faulty processes not in the graph: {sorted(map(repr, unknown))}")

    # ------------------------------------------------------------------
    # basic sets
    # ------------------------------------------------------------------
    @cached_property
    def correct(self) -> frozenset[ProcessId]:
        """The correct processes ``Π_C``."""
        return frozenset(self.graph.processes - self.faulty)

    @cached_property
    def safe_graph(self) -> KnowledgeGraph:
        """``Gsafe``: the subgraph induced by the correct processes."""
        return self.graph.subgraph(self.correct)

    # ------------------------------------------------------------------
    # sink facts
    # ------------------------------------------------------------------
    @cached_property
    def safe_sink(self) -> frozenset[ProcessId]:
        """The members of the (unique) sink of ``Gsafe`` (empty when not unique)."""
        sinks = sink_components(self.safe_graph)
        if len(sinks) != 1:
            return frozenset()
        return sinks[0]

    @cached_property
    def sink_of_full_graph(self) -> frozenset[ProcessId]:
        """Union of the sink components of the full graph ``Gdi``."""
        return sink_members(self.graph)

    @cached_property
    def expected_sink(self) -> frozenset[ProcessId]:
        """The set the online Sink/Core algorithms are expected to return.

        Theorem 4's uniqueness argument implicitly treats Byzantine processes
        that are known by more than ``f`` correct sink members as sink
        members; the expected answer is therefore the safe sink plus every
        faulty process with more than ``f`` in-neighbours among the safe
        sink, where ``f`` is the number of faulty processes tolerated by the
        graph's connectivity (``max_osr_k(Gsafe) - 1``).
        """
        safe_sink = self.safe_sink
        if not safe_sink:
            return frozenset()
        f = max(self.safe_osr_k - 1, 0)
        extra = set()
        for candidate in sorted(self.faulty, key=repr):
            in_neighbours = sum(
                1 for member in safe_sink if self.graph.has_edge(member, candidate)
            )
            if in_neighbours > f:
                extra.add(candidate)
        return frozenset(safe_sink | extra)

    @cached_property
    def safe_osr_k(self) -> int:
        """The largest ``k`` for which ``Gsafe`` is k-OSR."""
        return max_osr_k(self.safe_graph)

    # ------------------------------------------------------------------
    # core facts (BFT-CUPFT)
    # ------------------------------------------------------------------
    @cached_property
    def safe_core_witness(self) -> SinkWitness | None:
        """The core of ``Gsafe`` (the unique strongest sink), if any."""
        return find_core(self.safe_graph, self.options)

    @cached_property
    def safe_core(self) -> frozenset[ProcessId]:
        """Members of the core of ``Gsafe`` (empty when no core exists)."""
        witness = self.safe_core_witness
        return frozenset() if witness is None else witness.members

    @cached_property
    def expected_core(self) -> frozenset[ProcessId]:
        """The set the online Core algorithm is expected to return.

        Analogous to :attr:`expected_sink`: the safe core plus Byzantine
        processes with more than ``f_Gdi(core)`` in-neighbours in it.
        """
        witness = self.safe_core_witness
        if witness is None:
            return frozenset()
        extra = set()
        for candidate in sorted(self.faulty, key=repr):
            in_neighbours = sum(
                1 for member in witness.members if self.graph.has_edge(member, candidate)
            )
            if in_neighbours > witness.f:
                extra.add(candidate)
        return frozenset(witness.members | extra)

    def core_connectivity(self) -> int | None:
        """``k_Gdi`` of the safe core, or ``None`` when no core exists."""
        witness = self.safe_core_witness
        return None if witness is None else witness.connectivity

    # ------------------------------------------------------------------
    # predicate helpers on the full graph
    # ------------------------------------------------------------------
    def full_view(self) -> KnowledgeView:
        """The omniscient knowledge view of the full graph."""
        return KnowledgeView.full(self.graph)

    def f_of(self, members: Iterable[ProcessId]) -> int | None:
        """``f_Gdi(members)`` evaluated on the full graph."""
        return f_gdi(self.full_view(), members)

    def k_of(self, members: Iterable[ProcessId]) -> int | None:
        """``k_Gdi(members)`` evaluated on the full graph."""
        return k_gdi(self.full_view(), members)
