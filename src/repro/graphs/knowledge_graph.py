"""The knowledge connectivity graph (Section II-C of the paper).

A knowledge connectivity graph ``Gdi = (Vdi, Edi)`` has one vertex per
process and a directed edge ``(i, j)`` whenever process ``i`` *initially
knows* process ``j``, i.e. ``j`` is in the set returned by ``i``'s
participant detector ``PD_i``.

The class below is a small, dependency-free directed graph tailored to the
needs of the paper: process identifiers are arbitrary hashable values
(usually ``int``), the out-neighbourhood of ``i`` *is* ``PD_i``, and the
graph supports the subgraph / safe-subgraph operations used throughout the
paper.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

ProcessId = Hashable


class KnowledgeGraph:
    """Directed graph of "who initially knows whom".

    The graph is mutable while being built (``add_process`` / ``add_edge``)
    and is otherwise treated as static, mirroring the paper's assumption
    that each participant detector always returns the same set.

    Parameters
    ----------
    pd:
        Optional mapping ``process id -> iterable of known process ids``
        used to initialise the graph.  Every process appearing only as a
        target of an edge is added as a vertex as well.
    """

    def __init__(self, pd: Mapping[ProcessId, Iterable[ProcessId]] | None = None) -> None:
        self._succ: dict[ProcessId, set[ProcessId]] = {}
        self._pred: dict[ProcessId, set[ProcessId]] = {}
        if pd is not None:
            for node, known in pd.items():
                self.add_process(node)
                for other in known:
                    self.add_edge(node, other)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, node: ProcessId) -> None:
        """Add a process (vertex) to the graph if not already present."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, source: ProcessId, target: ProcessId) -> None:
        """Record that ``source`` initially knows ``target``.

        Self-loops are ignored: a process trivially knows itself and the
        paper never includes ``i`` in ``PD_i``.
        """
        if source == target:
            self.add_process(source)
            return
        self.add_process(source)
        self.add_process(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def add_edges(self, edges: Iterable[tuple[ProcessId, ProcessId]]) -> None:
        """Add a collection of directed edges."""
        for source, target in edges:
            self.add_edge(source, target)

    def remove_edge(self, source: ProcessId, target: ProcessId) -> None:
        """Remove the edge ``source -> target`` if present."""
        self._succ.get(source, set()).discard(target)
        self._pred.get(target, set()).discard(source)

    def remove_process(self, node: ProcessId) -> None:
        """Remove a process and all its incident edges."""
        if node not in self._succ:
            return
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)

    def copy(self) -> "KnowledgeGraph":
        """Return a deep copy of the graph."""
        clone = KnowledgeGraph()
        for node in self._succ:
            clone.add_process(node)
        for source, targets in self._succ.items():
            for target in targets:
                clone.add_edge(source, target)
        return clone

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def processes(self) -> frozenset[ProcessId]:
        """The vertex set ``Vdi`` (all processes)."""
        return frozenset(self._succ)

    @property
    def nodes(self) -> frozenset[ProcessId]:
        """Alias of :attr:`processes`."""
        return self.processes

    def edges(self) -> Iterator[tuple[ProcessId, ProcessId]]:
        """Iterate over all directed edges ``(i, j)``."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def edge_count(self) -> int:
        """The number of directed edges."""
        return sum(len(targets) for targets in self._succ.values())

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: ProcessId) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._succ)

    def has_edge(self, source: ProcessId, target: ProcessId) -> bool:
        """Return ``True`` when ``source`` initially knows ``target``."""
        return target in self._succ.get(source, set())

    def participant_detector(self, node: ProcessId) -> frozenset[ProcessId]:
        """Return ``PD_node``: the processes ``node`` initially knows."""
        if node not in self._succ:
            raise KeyError(f"unknown process: {node!r}")
        return frozenset(self._succ[node])

    # ``successors`` and ``out_neighbours`` are synonyms of the PD.
    def successors(self, node: ProcessId) -> frozenset[ProcessId]:
        """Out-neighbours of ``node`` (same as its participant detector)."""
        return self.participant_detector(node)

    def predecessors(self, node: ProcessId) -> frozenset[ProcessId]:
        """Processes that initially know ``node``."""
        if node not in self._pred:
            raise KeyError(f"unknown process: {node!r}")
        return frozenset(self._pred[node])

    def out_degree(self, node: ProcessId) -> int:
        """Number of processes that ``node`` initially knows."""
        return len(self.participant_detector(node))

    def in_degree(self, node: ProcessId) -> int:
        """Number of processes that initially know ``node``."""
        return len(self.predecessors(node))

    def pd_map(self) -> dict[ProcessId, frozenset[ProcessId]]:
        """Return the whole participant-detector mapping."""
        return {node: frozenset(targets) for node, targets in self._succ.items()}

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[ProcessId]) -> "KnowledgeGraph":
        """Return the subgraph induced by ``nodes`` (``Gdi[U]`` in the paper)."""
        keep = set(nodes)
        unknown = keep - set(self._succ)
        if unknown:
            raise KeyError(f"unknown processes: {sorted(map(repr, unknown))}")
        sub = KnowledgeGraph()
        # Hot path (called per candidate set during sink searches); the
        # resulting adjacency is queried as sets/counts, never walked in
        # insertion order, so materialising a sorted copy would be pure cost.
        for node in keep:  # lint: allow[DET-ORDER-SET] order-insensitive graph build on a hot path
            sub.add_process(node)
        for node in keep:  # lint: allow[DET-ORDER-SET] order-insensitive graph build on a hot path
            for target in self._succ[node]:
                if target in keep:
                    sub.add_edge(node, target)
        return sub

    def safe_subgraph(self, faulty: Iterable[ProcessId]) -> "KnowledgeGraph":
        """Return ``Gsafe = Gdi[Π_C]``, the subgraph induced by correct processes.

        Parameters
        ----------
        faulty:
            The set ``Π_F`` of faulty processes to exclude.
        """
        faulty_set = set(faulty)
        return self.subgraph(set(self._succ) - faulty_set)

    def undirected_counterpart(self) -> dict[ProcessId, set[ProcessId]]:
        """Return the undirected counterpart ``G`` as an adjacency mapping.

        An undirected edge ``{i, j}`` exists whenever ``(i, j)`` or ``(j, i)``
        is an edge of the directed graph.
        """
        adjacency: dict[ProcessId, set[ProcessId]] = {node: set() for node in self._succ}
        for source, target in self.edges():
            adjacency[source].add(target)
            adjacency[target].add(source)
        return adjacency

    def reversed(self) -> "KnowledgeGraph":
        """Return the graph with every edge reversed."""
        rev = KnowledgeGraph()
        for node in self._succ:
            rev.add_process(node)
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

    # ------------------------------------------------------------------
    # reachability helpers
    # ------------------------------------------------------------------
    def reachable_from(self, node: ProcessId) -> set[ProcessId]:
        """Return all processes reachable from ``node`` (including itself)."""
        if node not in self._succ:
            raise KeyError(f"unknown process: {node!r}")
        seen = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for target in self._succ[current]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def is_undirected_connected(self) -> bool:
        """Return ``True`` when the undirected counterpart is connected."""
        if not self._succ:
            return True
        adjacency = self.undirected_counterpart()
        start = next(iter(adjacency))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(adjacency)

    # ------------------------------------------------------------------
    # interoperability / misc
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Return an equivalent :class:`networkx.DiGraph` (for cross-checking)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[ProcessId, ProcessId]],
        nodes: Iterable[ProcessId] | None = None,
    ) -> "KnowledgeGraph":
        """Build a graph from an edge list (and optionally isolated nodes)."""
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_process(node)
        graph.add_edges(edges)
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeGraph):
            return NotImplemented
        return self.pd_map() == other.pd_map()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(processes={len(self)}, edges={self.edge_count()})"
        )
