"""Reachable reliable broadcast: delivery after > f node-disjoint paths.

In the unauthenticated BFT-CUP model a Byzantine relay can alter any message
it forwards, so a receiver only trusts content that arrived through more
than ``f`` node-disjoint relay paths: at least one of those paths is then
fully correct, and (because correct relays do not alter content) the
delivered copy is authentic.

:class:`DisjointPathTracker` implements the receiver side: it accumulates
the relay paths over which each distinct content arrived and reports the
maximum number of internally node-disjoint paths among them (computed with
the same max-flow machinery used for the graph connectivity checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.connectivity import node_disjoint_path_count
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId


@dataclass(frozen=True)
class FloodedRecord:
    """A piece of content flooded through the network with its relay path.

    ``path`` is the sequence of processes the copy traversed, starting at
    the originator and excluding the final receiver.
    """

    origin: ProcessId
    content: Any
    path: tuple[ProcessId, ...]

    def extended(self, relay: ProcessId) -> "FloodedRecord":
        """The record as re-forwarded by ``relay``."""
        return FloodedRecord(origin=self.origin, content=self.content, path=self.path + (relay,))


@dataclass
class DisjointPathTracker:
    """Tracks, per (origin, content), the relay paths a receiver has seen."""

    receiver: ProcessId
    #: Paths seen so far, keyed by (origin, content).
    _paths: dict[tuple[ProcessId, Any], set[tuple[ProcessId, ...]]] = field(default_factory=dict)

    def record(self, flooded: FloodedRecord) -> None:
        """Store one received copy (idempotent)."""
        key = (flooded.origin, flooded.content)
        self._paths.setdefault(key, set()).add(tuple(flooded.path))

    def disjoint_path_count(self, origin: ProcessId, content: Any) -> int:
        """Maximum number of internally node-disjoint paths seen for this content.

        The union of the received relay paths forms a directed graph from
        the origin to the receiver; by Menger's theorem the maximum number
        of node-disjoint origin->receiver paths in that union equals the
        max-flow in its node-split network, which is what we compute.  A
        direct delivery (empty relay path beyond the origin) counts as one
        path that cannot be shared with any other.
        """
        key = (origin, content)
        paths = self._paths.get(key)
        if not paths:
            return 0
        graph = KnowledgeGraph()
        graph.add_process(origin)
        graph.add_process(self.receiver)
        for path in paths:
            hops = list(path) + [self.receiver]
            if hops[0] != origin:
                hops = [origin] + hops
            for source, target in zip(hops, hops[1:], strict=False):
                graph.add_edge(source, target)
        if origin == self.receiver:
            return len(paths)
        return node_disjoint_path_count(graph, origin, self.receiver)

    def deliverable(self, origin: ProcessId, content: Any, fault_threshold: int) -> bool:
        """True when the content arrived through more than ``f`` disjoint paths."""
        return self.disjoint_path_count(origin, content) > fault_threshold

    def contents_from(self, origin: ProcessId) -> list[Any]:
        """All distinct contents seen claiming to originate at ``origin``."""
        return [content for (seen_origin, content) in self._paths if seen_origin == origin]

    def seen_paths(self, origin: ProcessId, content: Any) -> int:
        """Number of distinct relay paths recorded for this content."""
        return len(self._paths.get((origin, content), ()))
