"""Unauthenticated discovery + sink identification (the BFT-CUP baseline).

Without signatures, a process cannot trust a forwarded participant detector:
a Byzantine relay could have altered it.  The original BFT-CUP protocol
therefore floods PDs along the knowledge graph and a receiver only *accepts*
a PD once identical copies arrived over more than ``f`` node-disjoint relay
paths (reachable reliable broadcast).  Direct delivery from the owner itself
is also accepted (the point-to-point channels are authenticated).

The node below implements that flooding discovery, feeds the accepted PDs
into the same :class:`~repro.core.locators.SinkLocator` used by the
authenticated protocol, and stops once the sink is identified.  The
benchmark ``bench_auth_vs_unauth.py`` compares the number of messages and
the identification latency against the authenticated Discovery algorithm,
quantifying the simplification claimed in Section III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.reachable_broadcast import DisjointPathTracker, FloodedRecord
from repro.core.config import ProtocolConfig
from repro.crypto.signatures import KeyRegistry
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId
from repro.graphs.predicates import KnowledgeView
from repro.graphs.sink_search import SearchOptions, find_sink_with_fault_threshold
from repro.runtime.base import Runtime
from repro.runtime.sim import SimRuntime, build_sim_runtime
from repro.sim.process import Process
from repro.sim.synchrony import SynchronyModel
from repro.sim.tracing import SimulationTrace


@dataclass(frozen=True)
class FloodPd:
    """A flooded (unsigned) participant-detector record with its relay path."""

    record: FloodedRecord


class UnauthenticatedDiscoveryNode(Process):
    """Discovery via flooding + reachable reliable broadcast, then Algorithm 2."""

    def __init__(
        self,
        process_id: ProcessId,
        participant_detector: frozenset[ProcessId],
        runtime: Runtime,
        fault_threshold: int,
        *,
        flood_period: float = 5.0,
        search: SearchOptions | None = None,
        trace: SimulationTrace | None = None,
    ) -> None:
        super().__init__(process_id, participant_detector, runtime=runtime)
        self.fault_threshold = fault_threshold
        self.flood_period = flood_period
        self.search = search or SearchOptions()
        self.trace = trace if trace is not None else getattr(runtime, "trace", SimulationTrace())

        self.tracker = DisjointPathTracker(receiver=process_id)
        #: Accepted participant detectors (delivered by reachable broadcast).
        self.accepted: dict[ProcessId, frozenset[ProcessId]] = {
            process_id: frozenset(participant_detector)
        }
        #: Contents received directly from their origin over the
        #: authenticated channel (trusted without path counting).
        self._direct: dict[ProcessId, frozenset[ProcessId]] = {}
        self.known: set[ProcessId] = set(participant_detector) | {process_id}
        self.identified_members: frozenset[ProcessId] | None = None
        self.identified_at: float | None = None
        self._started = False

        self.on(FloodPd, self._handle_flood)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._flood_round()
        self.every(self.flood_period, self._flood_round, label="unauthenticated flood")

    def _flood_round(self) -> None:
        if self.identified_members is not None:
            return
        for owner, pd in sorted(self.accepted.items(), key=lambda item: repr(item[0])):
            if owner == self.process_id:
                record = FloodedRecord(origin=owner, content=pd, path=(owner,))
            else:
                record = FloodedRecord(origin=owner, content=pd, path=(owner, self.process_id))
            self.send_to_all(self.known, FloodPd(record=record))

    def _handle_flood(self, sender: ProcessId, message: FloodPd) -> None:
        record = message.record
        if not isinstance(record.content, frozenset):
            return
        if not record.path or record.path[0] != record.origin:
            return
        if record.path[-1] != sender:
            # The last relay must be the channel sender (channels are
            # authenticated even though payloads are not signed).
            return
        if self.process_id in record.path:
            return
        if record.path == (record.origin,) and sender == record.origin:
            # Direct delivery from the origin itself: trusted immediately.
            self._direct[record.origin] = record.content
        self.tracker.record(record)
        changed = self._try_accept(record.origin)
        # Forward the copy onwards (flooding), extending the relay path.
        forwarded = FloodPd(record=record.extended(self.process_id))
        self.send_to_all(self.known - set(record.path) - {record.origin}, forwarded)
        if changed:
            self._attempt_identification()

    def _try_accept(self, origin: ProcessId) -> bool:
        """Accept ``origin``'s PD once it is trustworthy.

        A PD is trusted either because it was received directly from its
        origin over the authenticated channel, or because identical copies
        arrived through more than ``f`` node-disjoint relay paths.
        """
        if origin in self.accepted:
            return False
        accepted_content: frozenset[ProcessId] | None = None
        if origin in self._direct:
            accepted_content = self._direct[origin]
        else:
            for content in self.tracker.contents_from(origin):
                if self.tracker.deliverable(origin, content, self.fault_threshold):
                    accepted_content = content
                    break
        if accepted_content is None:
            return False
        self.accepted[origin] = accepted_content
        self.known.update(accepted_content)
        self.known.add(origin)
        return True

    def _attempt_identification(self) -> None:
        if self.identified_members is not None:
            return
        view = KnowledgeView(known=frozenset(self.known), pds=dict(self.accepted))
        witness = find_sink_with_fault_threshold(view, self.fault_threshold, self.search)
        if witness is not None:
            self.identified_members = witness.members
            self.identified_at = self.now
            self.trace.on_sink_identified(self.process_id, witness.members, self.now)


@dataclass
class SinkDiscoveryOutcome:
    """Result of a discovery-only run (used by the baseline benchmark)."""

    identified: dict[ProcessId, frozenset[ProcessId]]
    identification_times: dict[ProcessId, float]
    messages_sent: int
    all_correct_identified: bool
    agreement_on_members: bool
    virtual_duration: float
    #: Crypto fast-path counters from the run's :class:`KeyRegistry`
    #: (zero for the unauthenticated variant, which verifies nothing).
    verify_calls: int = 0
    verify_cache_hits: int = 0
    canonical_cache_hits: int = 0


def _outcome(
    nodes: dict[ProcessId, Any],
    correct: frozenset[ProcessId],
    trace: SimulationTrace,
    virtual_duration: float,
    registry: KeyRegistry | None = None,
) -> SinkDiscoveryOutcome:
    identified = {}
    times = {}
    for process_id in sorted(correct, key=repr):
        node = nodes[process_id]
        members = getattr(node, "identified_members", None)
        if members is not None:
            identified[process_id] = members
            times[process_id] = getattr(node, "identified_at", 0.0) or 0.0
    return SinkDiscoveryOutcome(
        identified=identified,
        identification_times=times,
        messages_sent=trace.messages_sent,
        all_correct_identified=set(identified) == set(correct),
        agreement_on_members=len(set(identified.values())) <= 1,
        virtual_duration=virtual_duration,
        verify_calls=registry.verify_calls if registry is not None else 0,
        verify_cache_hits=registry.verify_cache_hits if registry is not None else 0,
        canonical_cache_hits=registry.canonical_cache_hits if registry is not None else 0,
    )


def _discovery_runtime(
    horizon: float,
    synchrony: SynchronyModel | None,
    trace: SimulationTrace,
    seed: int,
    faulty: frozenset[ProcessId],
) -> SimRuntime:
    # The baseline runs historically seeded the network with the *raw* run
    # seed (no substream derivation); the factory takes the seed verbatim,
    # so every recorded trajectory is preserved.
    return build_sim_runtime(
        max_time=horizon, synchrony=synchrony, trace=trace, network_seed=seed, faulty=faulty
    )


def run_unauthenticated_sink_discovery(
    graph: KnowledgeGraph,
    fault_threshold: int,
    faulty: frozenset[ProcessId] = frozenset(),
    *,
    seed: int = 0,
    horizon: float = 2_000.0,
    synchrony=None,
) -> SinkDiscoveryOutcome:
    """Run the unauthenticated (flooding) discovery until every correct process finds the sink."""
    trace = SimulationTrace()
    runtime = _discovery_runtime(horizon, synchrony, trace, seed, faulty)
    correct = frozenset(graph.processes - faulty)
    nodes: dict[ProcessId, Process] = {}
    for process_id in sorted(graph.processes, key=repr):
        pd = graph.participant_detector(process_id)
        node = UnauthenticatedDiscoveryNode(
            process_id, pd, runtime, fault_threshold, trace=trace
        )
        nodes[process_id] = node
    for process_id in sorted(correct, key=repr):
        nodes[process_id].start()

    def done() -> bool:
        return all(nodes[p].identified_members is not None for p in correct)

    runtime.simulator.run(until=done)
    return _outcome(nodes, correct, trace, runtime.now)


def run_authenticated_sink_discovery(
    graph: KnowledgeGraph,
    fault_threshold: int,
    faulty: frozenset[ProcessId] = frozenset(),
    *,
    seed: int = 0,
    horizon: float = 2_000.0,
    synchrony=None,
    registry: KeyRegistry | None = None,
) -> SinkDiscoveryOutcome:
    """Run the authenticated Discovery + Sink algorithms (no inner consensus).

    Counterpart of :func:`run_unauthenticated_sink_discovery` used by the
    baseline benchmark so both sides measure exactly the same phase
    (discovery until sink identification).  ``registry`` overrides the
    default ``KeyRegistry(seed=seed)`` — the benchmark uses it to compare
    the crypto fast path against a cache-less registry on the same run.
    """
    from repro.core.node import ConsensusNode

    trace = SimulationTrace()
    runtime = _discovery_runtime(horizon, synchrony, trace, seed, faulty)
    if registry is None:
        registry = KeyRegistry(seed=seed)
    correct = frozenset(graph.processes - faulty)
    protocol = ProtocolConfig.bft_cup(fault_threshold)
    nodes: dict[ProcessId, Process] = {}
    for process_id in sorted(graph.processes, key=repr):
        pd = graph.participant_detector(process_id)
        if process_id in faulty:
            # The baseline comparison uses silent Byzantine processes.
            nodes[process_id] = Process(process_id, pd, runtime=runtime)
            continue
        nodes[process_id] = ConsensusNode(
            process_id=process_id,
            participant_detector=pd,
            runtime=runtime,
            registry=registry,
            key=registry.generate(process_id),
            config=protocol,
            trace=trace,
        )
    for process_id in sorted(correct, key=repr):
        nodes[process_id].propose(f"value-of-{process_id!r}")

    def done() -> bool:
        return all(nodes[p].identified_members is not None for p in correct)

    runtime.simulator.run(until=done)
    return _outcome(nodes, correct, trace, runtime.now, registry=registry)
