"""Unauthenticated BFT-CUP baseline.

The original BFT-CUP protocol [10] does not use digital signatures; instead,
a process trusts a piece of information (another process's participant
detector) only after receiving it through **more than ``f`` node-disjoint
paths** -- the *reachable reliable broadcast* primitive.  The paper's
Section III argues that adding signatures collapses that machinery into the
20-line Discovery algorithm.  This package implements the unauthenticated
primitive and a discovery/sink protocol built on it so the claim can be
quantified (benchmark E7: messages and latency of sink identification,
authenticated vs unauthenticated).
"""

from repro.baselines.reachable_broadcast import DisjointPathTracker, FloodedRecord
from repro.baselines.unauthenticated import (
    UnauthenticatedDiscoveryNode,
    run_unauthenticated_sink_discovery,
    run_authenticated_sink_discovery,
)

__all__ = [
    "DisjointPathTracker",
    "FloodedRecord",
    "UnauthenticatedDiscoveryNode",
    "run_unauthenticated_sink_discovery",
    "run_authenticated_sink_discovery",
]
