"""Concrete faulty-node implementations.

Every faulty node is either a bare :class:`~repro.sim.process.Process`
(``silent``) or a subclass of :class:`~repro.core.node.ConsensusNode` that
overrides specific hooks.  Faulty nodes only ever sign with their *own* key
-- the signature layer makes forging a correct process's participant
detector impossible, which is the one cryptographic assumption the
authenticated model relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.adversary.spec import FaultSpec
from repro.core.config import ProtocolConfig
from repro.core.messages import GetDecidedValue, PdRecord
from repro.core.node import ConsensusNode
from repro.crypto.signatures import KeyRegistry, SigningKey
from repro.graphs.knowledge_graph import ProcessId
from repro.pbft.messages import PrePrepare
from repro.pbft.replica import _preprepare_payload
from repro.sim.process import Process
from repro.sim.tracing import SimulationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime
    from repro.sim.engine import Simulator
    from repro.sim.network import Network


class SilentNode(Process):
    """A Byzantine process that never sends any message.

    This is the behaviour assumed by the paper whenever it argues that a
    Byzantine process "remains silent" (Fig. 1a, Scenario I, Theorem 7).
    The node still exists on the network (so messages addressed to it are
    delivered and ignored), it just never reacts.
    """

    def propose(self, value: Any) -> None:  # matches the ConsensusNode API
        del value

    def receive(self, envelope) -> None:  # ignore everything
        del envelope


class CrashNode(ConsensusNode):
    """Behaves correctly until ``crash_time``, then stops forever."""

    def __init__(self, *args, crash_time: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.crash_time = crash_time

    def propose(self, value: Any) -> None:
        super().propose(value)
        self.after(max(self.crash_time - self.now, 0.0), self._crash, label="crash fault")

    def _crash(self) -> None:
        self.runtime.crash(self.process_id)
        self.stop()


class LyingPdNode(ConsensusNode):
    """Advertises a fabricated participant detector (signed with its own key)."""

    def __init__(self, *args, claimed_pd: frozenset[ProcessId], **kwargs) -> None:
        self._claimed_pd = frozenset(claimed_pd)
        super().__init__(*args, **kwargs)

    def advertised_pd(self) -> frozenset[ProcessId] | None:
        return self._claimed_pd


class EquivocatingPdNode(ConsensusNode):
    """Advertises one PD to half of the peers and another to the rest."""

    def __init__(
        self,
        *args,
        claimed_pd: frozenset[ProcessId],
        alternate_pd: frozenset[ProcessId],
        **kwargs,
    ) -> None:
        self._claimed_pd = frozenset(claimed_pd)
        self._alternate_pd = frozenset(alternate_pd)
        super().__init__(*args, **kwargs)
        self._alternate_record = self.key.sign(
            PdRecord(owner=self.process_id, pd=self._alternate_pd)
        )

    def advertised_pd(self) -> frozenset[ProcessId] | None:
        return self._claimed_pd

    def _set_pds_entries(self, requester: ProcessId) -> frozenset:
        entries = set(self.discovery.snapshot())
        # Show the alternate record to the "second half" of the identifier
        # space, deterministically, so the equivocation is reproducible.
        if repr(requester) > repr(self.process_id):
            entries.discard(self.discovery.records[self.process_id])
            entries.add(self._alternate_record)
        return frozenset(entries)


class WrongValueNode(ConsensusNode):
    """Participates in discovery but pushes a poisoned value everywhere it can."""

    def __init__(self, *args, poison_value: Any = "poisoned-value", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.poison_value = poison_value

    def choose_proposal(self) -> Any:
        return self.poison_value

    def decided_value_reply(self, requester: ProcessId) -> Any:
        del requester
        return self.poison_value

    def _handle_get_decided_value(self, sender: ProcessId, _message: GetDecidedValue) -> None:
        # Answer immediately with the poisoned value, decided or not.
        from repro.core.messages import DecidedValue

        self.send(sender, DecidedValue(value=self.poison_value))


class EquivocatingLeaderNode(ConsensusNode):
    """Equivocates in the inner consensus when it is the view-0 leader.

    After identifying the sink/core, instead of running a faithful replica
    it sends ``PrePrepare`` messages with *different* values to different
    members and then stays silent in the inner consensus, while still
    answering discovery and decided-value queries (with the poison value).
    """

    def __init__(self, *args, poison_value: Any = "poisoned-value", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.poison_value = poison_value

    def decided_value_reply(self, requester: ProcessId) -> Any:
        del requester
        return self.poison_value

    def _start_inner_consensus(self) -> None:
        group = self._group_key()
        members = sorted(group.members, key=repr)
        leader = members[0 % len(members)]
        if leader != self.process_id:
            # Not the leader: simply stay silent inside the inner consensus.
            return
        values = [self.poison_value, self.proposal]
        for index, member in enumerate(member for member in members if member != self.process_id):
            value = values[index % 2]
            signed = self.key.sign(_preprepare_payload(group, 0, value))
            self.send(member, PrePrepare(group=group, view=0, value=value, signed=signed))


def build_faulty_node(
    spec: FaultSpec,
    *,
    process_id: ProcessId,
    participant_detector: frozenset[ProcessId],
    simulator: Simulator | None = None,
    network: Network | None = None,
    registry: KeyRegistry,
    key: SigningKey,
    config: ProtocolConfig,
    trace: SimulationTrace | None = None,
    runtime: "Runtime | None" = None,
) -> Process:
    """Instantiate the node implementing ``spec`` for a faulty process."""
    common = dict(
        process_id=process_id,
        participant_detector=participant_detector,
        simulator=simulator,
        network=network,
        registry=registry,
        key=key,
        config=config,
        trace=trace,
        runtime=runtime,
    )
    if spec.behaviour == "silent":
        return SilentNode(process_id, participant_detector, simulator, network, runtime=runtime)
    if spec.behaviour == "crash":
        return CrashNode(crash_time=spec.crash_time, **common)
    if spec.behaviour == "lying_pd":
        claimed = spec.claimed_pd if spec.claimed_pd is not None else participant_detector
        return LyingPdNode(claimed_pd=claimed, **common)
    if spec.behaviour == "equivocating_pd":
        claimed = spec.claimed_pd if spec.claimed_pd is not None else participant_detector
        alternate = spec.alternate_pd if spec.alternate_pd is not None else frozenset()
        return EquivocatingPdNode(claimed_pd=claimed, alternate_pd=alternate, **common)
    if spec.behaviour == "wrong_value":
        return WrongValueNode(poison_value=spec.poison_value, **common)
    if spec.behaviour == "equivocating_leader":
        return EquivocatingLeaderNode(poison_value=spec.poison_value, **common)
    raise ValueError(f"unsupported behaviour: {spec.behaviour!r}")
