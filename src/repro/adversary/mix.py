"""Declarative per-process adversary mixes.

A :class:`FaultSpec` describes *one* faulty process; scenarios historically
applied a single behaviour string to *every* faulty process.  An
:class:`AdversaryMix` lifts the fault assignment to a first-class,
declarative axis: an ordered list of :class:`MixEntry` roles — a behaviour
name, how many faulty processes play it (an exact count or ``"rest"``),
optional parameter overrides and an optional placement *target*
(``inside_core`` / ``outside_core`` relative to the scenario's expected
sink/core, or an explicit id set) — plus a deterministic, seed-derived
placement of those roles onto the faulty set.

The mix is plain data: it is hashable, picklable and JSON round-trippable
(:meth:`AdversaryMix.to_dict` / :meth:`AdversaryMix.from_dict`), so it
crosses the work-queue job codec losslessly alongside the rest of a
:class:`~repro.experiments.scenario.Scenario`.  The concrete
:class:`FaultSpec` objects are only materialised by the workload builders,
inside the executing process.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.adversary.spec import BEHAVIOUR_PARAMS, KNOWN_BEHAVIOURS
from repro.core.seeding import derive_seed
from repro.graphs.knowledge_graph import ProcessId

#: Sentinel count assigning an entry to every faulty process not claimed by
#: a fixed-count entry.
REST = "rest"

#: Symbolic placement targets: restrict an entry to the faulty processes
#: attached to (or detached from) the expected sink/core of the scenario's
#: graph — "place the equivocator inside vs outside the expected sink".
INSIDE_CORE = "inside_core"
OUTSIDE_CORE = "outside_core"
_SYMBOLIC_TARGETS = frozenset({INSIDE_CORE, OUTSIDE_CORE})


@dataclass(frozen=True)
class MixEntry:
    """One role of a mix: a behaviour, a head-count and parameter overrides.

    ``count`` is a non-negative integer or :data:`REST` (``"rest"``); at
    most one entry of a mix may claim the rest.  ``params`` are keyword
    overrides forwarded to
    :func:`repro.workloads.builders.default_fault_spec` (e.g. ``at`` for
    ``crash``, ``poison_value`` for ``wrong_value``); values must be JSON
    scalars so the entry round-trips through job files.

    ``target`` optionally restricts *which* faulty processes may play the
    role: :data:`INSIDE_CORE` / :data:`OUTSIDE_CORE` (relative to the
    scenario's expected sink/core, see
    :func:`repro.workloads.builders.core_attached_faulty`) or an explicit
    tuple of process ids.  A ``rest`` entry cannot be targeted — it absorbs
    whatever the targeted entries left over.
    """

    behaviour: str
    count: int | str = 1
    params: tuple[tuple[str, Any], ...] = ()
    target: str | tuple[ProcessId, ...] | None = None

    def __post_init__(self) -> None:
        if self.behaviour not in KNOWN_BEHAVIOURS:
            raise ValueError(
                f"unknown behaviour {self.behaviour!r}; expected one of {sorted(KNOWN_BEHAVIOURS)}"
            )
        if isinstance(self.count, bool) or not (
            self.count == REST or (isinstance(self.count, int) and self.count >= 0)
        ):
            raise ValueError(
                f"entry count must be a non-negative integer or {REST!r}, got {self.count!r}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        allowed = BEHAVIOUR_PARAMS[self.behaviour]
        unknown = {name for name, _value in self.params} - allowed
        if unknown:
            raise ValueError(
                f"behaviour {self.behaviour!r} accepts no parameter named "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        if self.target is not None:
            if self.count == REST:
                raise ValueError(
                    f"a {REST!r} entry cannot be targeted; it absorbs the untargeted leftovers"
                )
            if isinstance(self.target, str):
                if self.target not in _SYMBOLIC_TARGETS:
                    raise ValueError(
                        f"unknown target {self.target!r}; expected one of "
                        f"{sorted(_SYMBOLIC_TARGETS)} or an explicit process-id tuple"
                    )
            else:
                ids = tuple(sorted(self.target, key=repr))
                if not ids:
                    raise ValueError("an explicit target set must not be empty")
                object.__setattr__(self, "target", ids)

    @property
    def key(self) -> str:
        """Stable human-readable identity of the entry."""
        rendered = "".join(f",{name}={value!r}" for name, value in self.params)
        if self.target is None:
            targeted = ""
        elif isinstance(self.target, str):
            targeted = f"@{self.target}"
        else:
            targeted = "@[" + ",".join(repr(p) for p in self.target) + "]"
        return f"{self.behaviour}{rendered}{targeted}:{self.count}"

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"behaviour": self.behaviour, "count": self.count}
        if self.params:
            payload["params"] = {name: value for name, value in self.params}
        if self.target is not None:
            payload["target"] = self.target if isinstance(self.target, str) else list(self.target)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MixEntry":
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            target = tuple(target)
        return cls(
            behaviour=payload["behaviour"],
            count=payload.get("count", 1),
            params=tuple(sorted(payload.get("params", {}).items())),
            target=target,
        )


@dataclass(frozen=True)
class AdversaryMix:
    """A declarative, heterogeneous assignment of behaviours to faulty processes.

    ``entries`` are filled in order: fixed-count entries claim processes
    first, then the (at most one) ``"rest"`` entry claims whoever is left.
    Placement onto a concrete faulty set is performed by :meth:`assign`,
    which shuffles the (sorted) faulty processes with a seed derived from
    the run seed and the mix identity — deterministic for a given
    ``(mix, faulty set, seed)`` in every process, yet varying across seed
    replicates so no process is systematically assigned the same role.
    """

    entries: tuple[MixEntry, ...]
    #: Optional short label used in scenario names, labels and digests
    #: instead of the spelled-out entry list.
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValueError("an adversary mix needs at least one entry")
        rests = sum(1 for entry in self.entries if entry.count == REST)
        if rests > 1:
            raise ValueError(f"at most one mix entry may claim {REST!r}, got {rests}")

    @classmethod
    def of(cls, name: str = "", /, **counts: int | str) -> "AdversaryMix":
        """Shorthand constructor: ``AdversaryMix.of(equivocating_pd=1, silent="rest")``.

        Keyword order is preserved and determines placement priority; the
        optional positional ``name`` labels the mix in reports.
        """
        if not counts:
            raise ValueError("an adversary mix needs at least one behaviour=count entry")
        return cls(
            entries=tuple(MixEntry(behaviour=b, count=c) for b, c in counts.items()),
            name=name,
        )

    @property
    def key(self) -> str:
        """Stable identity used for labels, seed derivation and digests."""
        spelled = ",".join(entry.key for entry in self.entries)
        return f"mix:{self.name}({spelled})" if self.name else f"mix({spelled})"

    def assign(
        self,
        faulty: frozenset[ProcessId],
        *,
        seed: int = 0,
        inside_core: frozenset[ProcessId] | None = None,
    ) -> dict[ProcessId, MixEntry]:
        """Deterministically place each entry's role onto the faulty set.

        ``inside_core`` is the subset of ``faulty`` attached to the expected
        sink/core (the workload builders compute it from the scenario's
        ground truth); it is only required when an entry carries an
        :data:`INSIDE_CORE` / :data:`OUTSIDE_CORE` target.  Targeted
        entries claim their processes *first* (in entry order), so an
        untargeted fixed count can never starve a later targeted entry of
        its only eligible processes — placement succeeds whenever any
        assignment exists, independent of the shuffle.  Untargeted entries
        then place exactly as they did before targeting existed: fixed
        counts claim prefixes of the seed-shuffled faulty list, then the
        (at most one) ``rest`` entry claims whoever is left.
        """
        ordered = sorted(faulty, key=repr)
        rng = random.Random(derive_seed(seed, "adversary-mix", self.key))
        rng.shuffle(ordered)
        assignment: dict[ProcessId, MixEntry] = {}
        available = list(ordered)
        rest_entry: MixEntry | None = None
        fixed = [entry for entry in self.entries if entry.count != REST]
        for entry in self.entries:
            if entry.count == REST:
                rest_entry = entry
        placement_order = [entry for entry in fixed if entry.target is not None] + [
            entry for entry in fixed if entry.target is None
        ]
        for entry in placement_order:
            eligible = [
                process
                for process in available
                if self._eligible(entry, process, faulty, inside_core)
            ]
            take = int(entry.count)
            if take > len(eligible):
                raise ValueError(
                    f"mix {self.key} entry {entry.key!r} needs {take} eligible faulty "
                    f"process(es) but the scenario offers only {len(eligible)} "
                    f"(faulty: {len(ordered)})"
                )
            for process in eligible[:take]:
                assignment[process] = entry
                available.remove(process)
        if rest_entry is not None:
            for process in available:
                assignment[process] = rest_entry
        elif available:
            raise ValueError(
                f"mix {self.key} covers {len(assignment)} faulty processes but the scenario "
                f"has {len(ordered)}; add a behaviour={REST!r} entry to absorb the remainder"
            )
        return assignment

    @staticmethod
    def _eligible(
        entry: MixEntry,
        process: ProcessId,
        faulty: frozenset[ProcessId],
        inside_core: frozenset[ProcessId] | None,
    ) -> bool:
        if entry.target is None:
            return True
        if isinstance(entry.target, tuple):
            targeted = frozenset(entry.target)
            stray = targeted - faulty
            if stray:
                raise ValueError(
                    f"mix entry {entry.key!r} targets {sorted(stray, key=repr)}, "
                    "which the scenario does not declare faulty"
                )
            return process in targeted
        if inside_core is None:
            raise ValueError(
                f"mix entry {entry.key!r} targets the expected core, but the scenario "
                "does not expose one (pass inside_core= to assign())"
            )
        if entry.target == INSIDE_CORE:
            return process in inside_core
        return process not in inside_core

    def minimum_faulty(self) -> int:
        """The smallest faulty-set size this mix can be placed onto."""
        return sum(int(entry.count) for entry in self.entries if entry.count != REST)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"entries": [entry.to_dict() for entry in self.entries]}
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdversaryMix":
        """Rebuild a mix from its :meth:`to_dict` JSON representation."""
        return cls(
            entries=tuple(MixEntry.from_dict(entry) for entry in payload["entries"]),
            name=payload.get("name", ""),
        )


__all__ = ["REST", "INSIDE_CORE", "OUTSIDE_CORE", "MixEntry", "AdversaryMix"]
