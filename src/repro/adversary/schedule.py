"""Declarative network fault schedules.

The paper's possibility/impossibility landscape (Table I, Theorem 7) is
driven by *when* and *between whom* messages are delayed.  Historically the
repo expressed this through ad-hoc ``Network.add_delay_override`` closures
buried inside experiment harnesses; a :class:`NetworkSchedule` lifts those
scripts to first-class, plain data:

* :class:`DelayRule` -- delay (by a fixed amount, or *until* an absolute
  time) or withhold every message from a source set to a destination set
  inside a virtual-time window;
* :class:`PartitionRule` -- cut the links between disjoint process groups
  for a window, with heal-at-``t_to`` semantics: messages sent across the
  cut during the window are delivered shortly after the partition heals
  (``t_to + heal_delay``), never lost — matching the reliable-channel
  assumption of the system model;
* :class:`CrashRule` -- crash one process at an absolute time.

A schedule is hashable, picklable and JSON round-trippable
(:meth:`NetworkSchedule.to_dict` / :meth:`NetworkSchedule.from_dict`), so it
crosses the work-queue job codec losslessly as a
:class:`~repro.experiments.scenario.Scenario` axis, and it compiles onto the
:class:`~repro.sim.network.Network` rule engine
(:meth:`NetworkSchedule.install`) with every drop/delay traced under the
matching rule's name.

**Model-contract validation.**  The proofs rely on the declared synchrony
model: under :class:`~repro.sim.network.PartialSynchronyModel` every message
between correct processes must be delivered by ``max(sent, GST) + delta``.
:meth:`NetworkSchedule.validate` rejects any rule that would break that
contract for correct→correct traffic (withholding it forever, delaying it
past the deadline, never healing a partition, crashing a process that is
not declared faulty) unless the rule carries an explicit
``adversarial=True`` marker — the marker documents that the script
deliberately steps outside the model, as the Theorem 7 indistinguishability
construction does.  Rules that only touch traffic involving faulty
processes are always admissible (a Byzantine process may do anything), and
:class:`~repro.sim.network.AsynchronousModel` imposes no delivery contract.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Union

from repro.graphs.knowledge_graph import ProcessId
from repro.sim.synchrony import PartialSynchronyModel, SynchronousModel, SynchronyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network, NetworkRule

#: Symbolic target sets, resolved against the run's membership at install
#: time: every registered process, the declared-faulty set, or its
#: complement.  Symbolic targets keep one schedule applicable across the
#: graphs of a sweep (explicit id sets are graph-specific).
ALL = "*"
FAULTY = "faulty"
CORRECT = "correct"
_SYMBOLIC_TARGETS = frozenset({ALL, FAULTY, CORRECT})

Targets = Union[str, frozenset]


class ScheduleError(ValueError):
    """A schedule is malformed (bad targets, empty window, bad codec payload)."""


class ScheduleContractError(ScheduleError):
    """A schedule rule violates the declared synchrony-model contract.

    Raised by :meth:`NetworkSchedule.validate` when a rule would withhold or
    over-delay correct→correct traffic (or crash a correct process) under a
    model whose proofs forbid exactly that.  Mark the rule
    ``adversarial=True`` to assert the violation is the point of the
    experiment (e.g. the Theorem 7 construction).
    """


def _freeze_targets(value: Targets | Iterable[ProcessId]) -> Targets:
    if isinstance(value, str):
        if value not in _SYMBOLIC_TARGETS:
            raise ScheduleError(
                f"unknown symbolic target {value!r}; expected one of "
                f"{sorted(_SYMBOLIC_TARGETS)} or an explicit process set"
            )
        return value
    targets = frozenset(value)
    if not targets:
        raise ScheduleError("an explicit target set must not be empty")
    return targets


def _resolve_targets(
    value: Targets, processes: frozenset[ProcessId], faulty: frozenset[ProcessId]
) -> frozenset[ProcessId]:
    if value == ALL:
        return processes
    if value == FAULTY:
        return faulty
    if value == CORRECT:
        return processes - faulty
    return frozenset(value)


def _format_targets(value: Targets) -> str:
    if isinstance(value, str):
        return value
    return "{" + ",".join(repr(p) for p in sorted(value, key=repr)) + "}"


def _encode_targets(value: Targets) -> Any:
    if isinstance(value, str):
        return value
    return sorted(value, key=repr)


def _decode_targets(value: Any) -> Targets:
    if isinstance(value, str):
        return _freeze_targets(value)
    return _freeze_targets(frozenset(value))


def _format_time(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:g}"


def _encode_time(value: float) -> Any:
    # Strict JSON has no Infinity literal; the string survives every parser.
    return "inf" if math.isinf(value) else value


def _decode_time(value: Any) -> float:
    return math.inf if value == "inf" else float(value)


@dataclass(frozen=True)
class DelayRule:
    """Delay or withhold ``src → dst`` messages sent during ``[t_from, t_to)``.

    Exactly one effect applies, chosen by the fields:

    * ``delay=d`` -- matched messages are delivered ``d`` after being sent;
    * ``until=T`` -- matched messages are delivered at absolute time ``T``
      (immediately, if sent after ``T``): "delay every message from X to Y
      until t";
    * neither -- matched messages are withheld forever.
    """

    src: Targets = ALL
    dst: Targets = ALL
    t_from: float = 0.0
    t_to: float = math.inf
    delay: float | None = None
    until: float | None = None
    #: Assert that this rule deliberately violates the synchrony-model
    #: contract (see :class:`ScheduleContractError`).
    adversarial: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _freeze_targets(self.src))
        object.__setattr__(self, "dst", _freeze_targets(self.dst))
        if self.delay is not None and self.until is not None:
            raise ScheduleError("a delay rule takes delay= or until=, not both")
        if self.delay is not None and not (self.delay >= 0 and math.isfinite(self.delay)):
            raise ScheduleError(f"delay must be finite and non-negative, got {self.delay!r}")
        if self.until is not None and not math.isfinite(self.until):
            # Omit both fields to withhold; an infinite effect would also
            # leak a non-strict-JSON Infinity literal into job files.
            raise ScheduleError(f"until must be finite, got {self.until!r}")
        if not self.t_to > self.t_from >= 0:
            raise ScheduleError(
                f"need 0 <= t_from < t_to, got [{self.t_from!r}, {self.t_to!r})"
            )

    @property
    def withholds(self) -> bool:
        """Whether matched messages are dropped forever (no effect field set)."""
        return self.delay is None and self.until is None

    @property
    def key(self) -> str:
        """Stable human-readable identity (schedule keys, labels, traces)."""
        if self.withholds:
            effect = "withhold"
        elif self.delay is not None:
            effect = f"delay={self.delay:g}"
        else:
            effect = f"until={self.until:g}"
        return (
            f"delay({_format_targets(self.src)}->{_format_targets(self.dst)},"
            f"[{_format_time(self.t_from)},{_format_time(self.t_to)}),{effect})"
        )

    @property
    def rule_name(self) -> str:
        return self.name or self.key

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": "delay",
            "src": _encode_targets(self.src),
            "dst": _encode_targets(self.dst),
            "t_from": self.t_from,
            "t_to": _encode_time(self.t_to),
        }
        if self.delay is not None:
            payload["delay"] = self.delay
        if self.until is not None:
            payload["until"] = self.until
        if self.adversarial:
            payload["adversarial"] = True
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DelayRule":
        return cls(
            src=_decode_targets(payload.get("src", ALL)),
            dst=_decode_targets(payload.get("dst", ALL)),
            t_from=float(payload.get("t_from", 0.0)),
            t_to=_decode_time(payload.get("t_to", "inf")),
            delay=payload.get("delay"),
            until=payload.get("until"),
            adversarial=bool(payload.get("adversarial", False)),
            name=payload.get("name", ""),
        )

    def compile(
        self, *, processes: frozenset[ProcessId], faulty: frozenset[ProcessId]
    ) -> "NetworkRule":
        # Deferred: the compiled form binds to the Network rule engine, so
        # it lives on the runtime seam, not in this plain-data module.
        from repro.runtime.sim import compile_delay_rule

        return compile_delay_rule(self, processes=processes, faulty=faulty)


@dataclass(frozen=True)
class PartitionRule:
    """Cut the links between disjoint groups during ``[t_from, t_to)``.

    Messages sent across the cut while the partition is up are *delayed*,
    not lost: they are delivered at ``t_to + heal_delay`` (heal-at-``t_to``
    semantics), which is what keeps a "partition until GST" script
    admissible under partial synchrony.  A partition with ``t_to = inf``
    never heals, so cross-group messages are withheld forever.  Processes
    not listed in any group are unaffected.
    """

    groups: tuple[frozenset[ProcessId], ...]
    t_from: float = 0.0
    t_to: float = math.inf
    heal_delay: float = 0.5
    adversarial: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        groups = tuple(frozenset(group) for group in self.groups)
        object.__setattr__(self, "groups", groups)
        if len(groups) < 2:
            raise ScheduleError("a partition needs at least two groups")
        members: set[ProcessId] = set()
        for group in groups:
            if not group:
                raise ScheduleError("partition groups must not be empty")
            if members & group:
                raise ScheduleError(f"partition groups overlap on {sorted(members & group, key=repr)}")
            members.update(group)
        if self.heal_delay <= 0:
            raise ScheduleError(f"heal_delay must be positive, got {self.heal_delay!r}")
        if not self.t_to > self.t_from >= 0:
            raise ScheduleError(
                f"need 0 <= t_from < t_to, got [{self.t_from!r}, {self.t_to!r})"
            )

    @property
    def key(self) -> str:
        spelled = "|".join(_format_targets(group) for group in self.groups)
        return (
            f"partition({spelled},[{_format_time(self.t_from)},{_format_time(self.t_to)}),"
            f"heal={self.heal_delay:g})"
        )

    @property
    def rule_name(self) -> str:
        return self.name or self.key

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": "partition",
            "groups": [sorted(group, key=repr) for group in self.groups],
            "t_from": self.t_from,
            "t_to": _encode_time(self.t_to),
            "heal_delay": self.heal_delay,
        }
        if self.adversarial:
            payload["adversarial"] = True
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionRule":
        return cls(
            groups=tuple(frozenset(group) for group in payload["groups"]),
            t_from=float(payload.get("t_from", 0.0)),
            t_to=_decode_time(payload.get("t_to", "inf")),
            heal_delay=float(payload.get("heal_delay", 0.5)),
            adversarial=bool(payload.get("adversarial", False)),
            name=payload.get("name", ""),
        )

    def compile(
        self, *, processes: frozenset[ProcessId], faulty: frozenset[ProcessId]
    ) -> "NetworkRule":
        del processes, faulty
        from repro.runtime.sim import compile_partition_rule

        return compile_partition_rule(self)


@dataclass(frozen=True)
class CrashRule:
    """Crash ``process`` at virtual time ``at``.

    A crashed process stops taking steps and its in-flight messages are
    dropped (the standard crash-fault semantics of
    :meth:`~repro.sim.network.Network.crash`).  Crashing a process that the
    run does not declare faulty silently changes the fault model the proofs
    assume, so validation rejects it unless marked ``adversarial=True``.
    """

    process: ProcessId
    at: float = 0.0
    adversarial: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ScheduleError(f"crash time must be non-negative, got {self.at!r}")

    @property
    def key(self) -> str:
        return f"crash({self.process!r}@{self.at:g})"

    @property
    def rule_name(self) -> str:
        return self.name or self.key

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": "crash", "process": self.process, "at": self.at}
        if self.adversarial:
            payload["adversarial"] = True
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CrashRule":
        return cls(
            process=payload["process"],
            at=float(payload.get("at", 0.0)),
            adversarial=bool(payload.get("adversarial", False)),
            name=payload.get("name", ""),
        )


ScheduleRule = Union[DelayRule, PartitionRule, CrashRule]

_RULE_KINDS: dict[str, type] = {
    "delay": DelayRule,
    "partition": PartitionRule,
    "crash": CrashRule,
}


@dataclass(frozen=True)
class NetworkSchedule:
    """An ordered script of network fault rules, as plain data.

    Rule order is precedence: for each message, the first matching rule
    decides (see :class:`~repro.sim.network.NetworkRule`).  The schedule is
    declarative — nothing is resolved until :meth:`install` binds it to a
    concrete :class:`~repro.sim.network.Network` — which is what lets it
    travel as a :class:`~repro.experiments.scenario.Scenario` axis through
    JSON job files and the TCP work queue.
    """

    rules: tuple[ScheduleRule, ...]
    #: Optional short label used in scenario names, labels and digests
    #: alongside the spelled-out rule list.
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if not self.rules:
            raise ScheduleError("a network schedule needs at least one rule")

    @property
    def key(self) -> str:
        """Stable identity used for labels, seed derivation and digests."""
        spelled = ",".join(rule.key for rule in self.rules)
        return f"sched:{self.name}({spelled})" if self.name else f"sched({spelled})"

    # ------------------------------------------------------------------
    # model-contract validation
    # ------------------------------------------------------------------
    def validate(
        self,
        model: SynchronyModel,
        *,
        processes: frozenset[ProcessId],
        faulty: frozenset[ProcessId],
    ) -> None:
        """Raise :class:`ScheduleContractError` on rules the model forbids.

        Under partial synchrony (GST ``g``, bound ``d``) a correct→correct
        message sent at ``t`` must be delivered by ``max(t, g) + d``; a
        synchronous model is the ``g = 0`` special case.  Asynchronous (and
        unknown) models impose no delivery contract, and rules marked
        ``adversarial=True`` opt out explicitly.  Crash rules are checked
        against the declared faulty set under every model: the fault
        assignment is part of the proofs' hypotheses, not of the synchrony
        contract.
        """
        processes = frozenset(processes)
        faulty = frozenset(faulty)
        if isinstance(model, PartialSynchronyModel):
            gst, delta = model.gst, model.delta
        elif isinstance(model, SynchronousModel):
            gst, delta = 0.0, model.delta
        else:
            gst = delta = None
        for rule in self.rules:
            if rule.adversarial:
                continue
            if isinstance(rule, CrashRule):
                if rule.process not in faulty:
                    raise ScheduleContractError(
                        f"rule {rule.rule_name!r} crashes {rule.process!r}, which the run "
                        "does not declare faulty; crashing a correct process changes the "
                        "fault model — declare it faulty or mark the rule adversarial=True"
                    )
                continue
            if gst is None or delta is None:
                continue
            deadline = gst + delta
            if isinstance(rule, DelayRule):
                self._validate_delay_rule(rule, processes, faulty, gst, delta, deadline)
            elif isinstance(rule, PartitionRule):
                self._validate_partition_rule(rule, faulty, deadline)

    @staticmethod
    def _validate_delay_rule(
        rule: DelayRule,
        processes: frozenset[ProcessId],
        faulty: frozenset[ProcessId],
        gst: float,
        delta: float,
        deadline: float,
    ) -> None:
        correct_src = _resolve_targets(rule.src, processes, faulty) - faulty
        correct_dst = _resolve_targets(rule.dst, processes, faulty) - faulty
        if not correct_src or not correct_dst:
            return  # only traffic involving faulty processes: always admissible
        if rule.withholds:
            raise ScheduleContractError(
                f"rule {rule.rule_name!r} withholds correct→correct traffic forever, "
                "which violates the reliable-channel/partial-synchrony contract "
                f"(every such message must arrive by max(sent, GST) + delta = "
                f"max(sent, {gst:g}) + {delta:g}); use until=/delay= to re-deliver, "
                "or mark the rule adversarial=True"
            )
        if rule.delay is not None:
            # Worst-case delivery: a message sent at sup(window ∩ [0, gst])
            # must make gst + delta; any post-GST send must make sent + delta.
            worst = rule.delay + (gst if rule.t_to > gst else rule.t_to)
            if worst > deadline + 1e-12:
                raise ScheduleContractError(
                    f"rule {rule.rule_name!r} delays correct→correct traffic past the "
                    f"model deadline (delivery up to t={worst:g} > GST + delta = "
                    f"{deadline:g}); shrink the delay/window or mark the rule "
                    "adversarial=True"
                )
        elif rule.until is not None and rule.until > deadline + 1e-12:
            raise ScheduleContractError(
                f"rule {rule.rule_name!r} holds correct→correct traffic until "
                f"t={rule.until:g}, past GST + delta = {deadline:g}; deliver earlier "
                "or mark the rule adversarial=True"
            )

    @staticmethod
    def _validate_partition_rule(
        rule: PartitionRule, faulty: frozenset[ProcessId], deadline: float
    ) -> None:
        correct_groups = sum(1 for group in rule.groups if group - faulty)
        if correct_groups < 2:
            return  # at most one group contains correct processes: no correct pair is cut
        if math.isinf(rule.t_to):
            raise ScheduleContractError(
                f"rule {rule.rule_name!r} partitions correct processes and never heals; "
                "set a finite t_to (heal time) or mark the rule adversarial=True"
            )
        if rule.t_to + rule.heal_delay > deadline + 1e-12:
            raise ScheduleContractError(
                f"rule {rule.rule_name!r} heals at t={rule.t_to + rule.heal_delay:g}, "
                f"past GST + delta = {deadline:g}; heal earlier or mark the rule "
                "adversarial=True"
            )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def install(self, network: "Network") -> None:
        """Validate against the network's model, then compile onto it.

        Message rules become ordered :class:`~repro.sim.network.NetworkRule`
        instances (their names show up in trace drop/delay reasons); crash
        rules become simulator events.  Call after every process has been
        registered, so symbolic targets resolve against the full membership.
        Delegates to :func:`repro.runtime.sim.install_schedule` — the
        schedule itself stays plain data with no transport coupling.
        """
        from repro.runtime.sim import install_schedule

        install_schedule(self, network)

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"rules": [rule.to_dict() for rule in self.rules]}
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkSchedule":
        """Rebuild a schedule from its :meth:`to_dict` JSON representation."""
        rules = []
        for entry in payload["rules"]:
            kind = entry.get("kind")
            rule_type = _RULE_KINDS.get(kind)
            if rule_type is None:
                raise ScheduleError(
                    f"unknown schedule rule kind {kind!r}; expected one of {sorted(_RULE_KINDS)}"
                )
            rules.append(rule_type.from_dict(entry))
        return cls(rules=tuple(rules), name=payload.get("name", ""))


__all__ = [
    "ALL",
    "FAULTY",
    "CORRECT",
    "CrashRule",
    "DelayRule",
    "NetworkSchedule",
    "PartitionRule",
    "ScheduleContractError",
    "ScheduleError",
    "ScheduleRule",
]
