"""Byzantine adversary: fault specifications and faulty node implementations.

The paper assumes a static Byzantine adversary: the set of faulty processes
is fixed before the execution and the faulty processes may behave
arbitrarily and collude.  This package provides a catalogue of concrete
behaviours used by the tests and experiments:

* ``silent``          -- never sends a message (the behaviour used in the
  paper's Fig. 1a and Scenario I discussions);
* ``crash``           -- behaves correctly until a given time, then stops
  (the weaker fault model used by the impossibility proof of Theorem 7);
* ``lying_pd``        -- advertises a fabricated participant detector
  (signed with its own key, which the model allows);
* ``equivocating_pd`` -- advertises different participant detectors to
  different processes;
* ``wrong_value``     -- participates correctly in discovery but proposes a
  poisoned value, equivocates when it is the inner-consensus leader and
  returns a bogus decided value to non-member queries.

Heterogeneous compositions of these behaviours ("one equivocator + rest
silent") are declared with :class:`~repro.adversary.mix.AdversaryMix`,
which the scenario layer sweeps as a first-class axis.  The *message-level*
adversary — scripted delays, partitions and crashes — is declared with
:class:`~repro.adversary.schedule.NetworkSchedule`, swept the same way.
"""

from repro.adversary.mix import INSIDE_CORE, OUTSIDE_CORE, REST, AdversaryMix, MixEntry
from repro.adversary.schedule import (
    CrashRule,
    DelayRule,
    NetworkSchedule,
    PartitionRule,
    ScheduleContractError,
    ScheduleError,
)
from repro.adversary.spec import FaultSpec
from repro.adversary.nodes import (
    CrashNode,
    EquivocatingLeaderNode,
    EquivocatingPdNode,
    LyingPdNode,
    SilentNode,
    build_faulty_node,
)

__all__ = [
    "AdversaryMix",
    "MixEntry",
    "REST",
    "INSIDE_CORE",
    "OUTSIDE_CORE",
    "NetworkSchedule",
    "DelayRule",
    "PartitionRule",
    "CrashRule",
    "ScheduleError",
    "ScheduleContractError",
    "FaultSpec",
    "SilentNode",
    "CrashNode",
    "LyingPdNode",
    "EquivocatingPdNode",
    "EquivocatingLeaderNode",
    "build_faulty_node",
]
