"""Declarative description of a faulty process's behaviour."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.knowledge_graph import ProcessId

#: The behaviours understood by :func:`repro.adversary.nodes.build_faulty_node`.
KNOWN_BEHAVIOURS = frozenset(
    {"silent", "crash", "lying_pd", "equivocating_pd", "wrong_value", "equivocating_leader"}
)

#: Per-behaviour parameter overrides accepted by
#: :func:`repro.workloads.builders.default_fault_spec` (and therefore by
#: :class:`repro.adversary.mix.MixEntry` params).  Anything else is rejected
#: up front: a misspelled override must fail the declaration, not silently
#: run the experiment with the default.
BEHAVIOUR_PARAMS: dict[str, frozenset[str]] = {
    "silent": frozenset(),
    "crash": frozenset({"at"}),
    "lying_pd": frozenset(),
    "equivocating_pd": frozenset(),
    "wrong_value": frozenset({"poison_value"}),
    "equivocating_leader": frozenset({"poison_value"}),
}


@dataclass(frozen=True)
class FaultSpec:
    """How one faulty process behaves during the execution.

    Parameters
    ----------
    behaviour:
        One of :data:`KNOWN_BEHAVIOURS`.
    crash_time:
        Virtual time at which a ``crash`` process stops (ignored otherwise).
    claimed_pd:
        The participant detector advertised by a ``lying_pd`` process; for
        ``equivocating_pd`` this is the PD shown to the first half of the
        peers while ``alternate_pd`` is shown to the rest.
    alternate_pd:
        Second fabricated PD for ``equivocating_pd``.
    poison_value:
        The value a ``wrong_value`` / ``equivocating_leader`` process pushes.
    """

    behaviour: str = "silent"
    crash_time: float = 0.0
    claimed_pd: frozenset[ProcessId] | None = None
    alternate_pd: frozenset[ProcessId] | None = None
    poison_value: Any = "poisoned-value"
    metadata: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if self.behaviour not in KNOWN_BEHAVIOURS:
            raise ValueError(
                f"unknown behaviour {self.behaviour!r}; expected one of {sorted(KNOWN_BEHAVIOURS)}"
            )

    # Convenience constructors --------------------------------------------------
    @classmethod
    def silent(cls) -> "FaultSpec":
        return cls(behaviour="silent")

    @classmethod
    def crash(cls, at: float) -> "FaultSpec":
        return cls(behaviour="crash", crash_time=at)

    @classmethod
    def lying_pd(cls, claimed_pd: frozenset[ProcessId]) -> "FaultSpec":
        return cls(behaviour="lying_pd", claimed_pd=frozenset(claimed_pd))

    @classmethod
    def equivocating_pd(
        cls, first: frozenset[ProcessId], second: frozenset[ProcessId]
    ) -> "FaultSpec":
        return cls(
            behaviour="equivocating_pd", claimed_pd=frozenset(first), alternate_pd=frozenset(second)
        )

    @classmethod
    def wrong_value(cls, poison_value: Any = "poisoned-value") -> "FaultSpec":
        return cls(behaviour="wrong_value", poison_value=poison_value)

    @classmethod
    def equivocating_leader(cls, poison_value: Any = "poisoned-value") -> "FaultSpec":
        return cls(behaviour="equivocating_leader", poison_value=poison_value)
