"""Messages of the single-shot PBFT-style inner consensus.

All messages carry the *group key* -- the (frozen) membership of the
sink/core plus the fault-threshold estimate -- so that instances started by
different (possibly Byzantine-confused) processes cannot interfere with each
other.  Pre-prepares and prepares are signed, which lets view-change
messages carry verifiable prepared certificates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.aggregate import AggregateTag
from repro.crypto.signatures import SignedMessage
from repro.graphs.knowledge_graph import ProcessId


@dataclass(frozen=True, slots=True)
class GroupKey:
    """Identity of one inner-consensus instance.

    The instance is identified by its *membership only*: correct processes
    may transiently derive different fault-threshold estimates from their
    views (the estimate is the witness connectivity minus one, which can lag
    behind while participant detectors are still arriving), and keying the
    instance by the membership lets them interoperate regardless.  Each
    replica applies its own estimate to its quorum threshold; see
    :mod:`repro.pbft.quorum` for why any estimate between the true number of
    Byzantine members and ``⌊(|S|-1)/2⌋`` keeps both safety and liveness.
    """

    members: frozenset[ProcessId]

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True, slots=True)
class PrePrepare:
    """Leader proposal for a view.  ``signed`` covers ``(group, view, value)``."""

    group: GroupKey
    view: int
    value: Any
    signed: SignedMessage


@dataclass(frozen=True, slots=True)
class Prepare:
    """A replica's vote for the leader's proposal in a view."""

    group: GroupKey
    view: int
    value: Any
    voter: ProcessId
    signed: SignedMessage


@dataclass(frozen=True, slots=True)
class Commit:
    """A replica's commit vote after collecting a prepare quorum."""

    group: GroupKey
    view: int
    value: Any
    voter: ProcessId


@dataclass(frozen=True, slots=True)
class PreparedCertificate:
    """Proof that a value gathered a prepare quorum in some view.

    Carries either the full set of signed prepare votes (``prepares``) or,
    when the run opts into aggregation, a single :class:`AggregateTag` over
    the common prepare payload (``aggregate``, with ``prepares`` empty).
    """

    group: GroupKey
    view: int
    value: Any
    prepares: frozenset[SignedMessage]
    aggregate: AggregateTag | None = None


@dataclass(frozen=True, slots=True)
class ViewChange:
    """Vote to move to ``new_view``, carrying the sender's prepared certificate (if any)."""

    group: GroupKey
    new_view: int
    voter: ProcessId
    prepared: PreparedCertificate | None


@dataclass(frozen=True, slots=True)
class NewView:
    """Announcement by the leader of ``view`` that it is taking over.

    Carries the view-change votes that justify the takeover and the value
    the leader will re-propose (the value of the highest prepared
    certificate among the votes, or the leader's own proposal when none).
    """

    group: GroupKey
    view: int
    value: Any
    justification: frozenset[ViewChange]
