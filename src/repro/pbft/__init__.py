"""Inner BFT consensus executed by the sink / core members.

Algorithm 3 of the paper treats the consensus run among the sink members as
a black box ("a traditional consensus protocol, e.g. PBFT [22]").  This
package provides that black box: a from-scratch, single-shot, signed,
PBFT-style protocol (pre-prepare / prepare / commit with view changes) whose
quorum size follows the paper's requirement that every quorum contains at
least ``⌈(|Vsink| + f + 1) / 2⌉`` sink processes.
"""

from repro.pbft.messages import Commit, NewView, PrePrepare, Prepare, PreparedCertificate, ViewChange
from repro.pbft.quorum import classic_quorum, paper_quorum
from repro.pbft.replica import PbftConfig, SingleShotPbft

__all__ = [
    "PrePrepare",
    "Prepare",
    "Commit",
    "ViewChange",
    "NewView",
    "PreparedCertificate",
    "paper_quorum",
    "classic_quorum",
    "PbftConfig",
    "SingleShotPbft",
]
