"""Quorum sizes for the inner consensus.

The paper (citing [11]) requires every quorum to include at least
``⌈(|Vsink| + f + 1) / 2⌉`` sink processes so that any two quorums intersect
in at least one correct process.  The classic PBFT quorum (``2f + 1`` out of
``3f + 1``) is provided as well for the ablation benchmark: with sinks of
size ``2f + 1 + b`` (``b ≤ f`` Byzantine members) the classic rule is either
unavailable or overly conservative, which is exactly the point the paper's
quorum definition makes.
"""

from __future__ import annotations

import math


def paper_quorum(group_size: int, fault_threshold: int) -> int:
    """``⌈(n + f + 1) / 2⌉``: the quorum size mandated by the paper."""
    if group_size <= 0:
        raise ValueError("the group must not be empty")
    if fault_threshold < 0:
        raise ValueError("the fault threshold must be non-negative")
    return math.ceil((group_size + fault_threshold + 1) / 2)


def classic_quorum(group_size: int, fault_threshold: int) -> int:
    """The classic ``2f + 1`` quorum (clamped to the group size).

    Only meaningful when ``group_size >= 3f + 1``; returned clamped so the
    ablation benchmark can still measure its effect on smaller groups.
    """
    if group_size <= 0:
        raise ValueError("the group must not be empty")
    if fault_threshold < 0:
        raise ValueError("the fault threshold must be non-negative")
    return min(2 * fault_threshold + 1, group_size)


def quorums_intersect_in_correct(group_size: int, fault_threshold: int, quorum: int) -> bool:
    """Check the safety condition ``2q - n >= f + 1``."""
    return 2 * quorum - group_size >= fault_threshold + 1
