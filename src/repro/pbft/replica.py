"""A single-shot, signed, PBFT-style consensus replica.

The replica agrees on exactly one value among a fixed group of members (the
sink or core identified by the outer protocol).  The protocol is the usual
three-phase commit with leader rotation:

1. The leader of the current view sends a signed ``PrePrepare`` with its
   proposal.
2. Replicas that accept it broadcast a signed ``Prepare``.
3. After a quorum of matching prepares, replicas broadcast ``Commit`` and
   lock on the value; after a quorum of matching commits they decide.
4. If a view stalls (Byzantine or slow leader), replicas broadcast
   ``ViewChange`` carrying their highest prepared certificate; the next
   leader collects a quorum of view changes, picks the value of the highest
   certificate (or its own proposal when none) and re-proposes it in a
   ``NewView``.

Safety relies on the quorum intersection property (any two quorums share a
correct replica) plus the lock rule: a replica that has seen a prepare
quorum for a value only ever prepares that value again, unless shown a
``NewView`` justified by a quorum of view changes whose certificates carry a
higher view.  Proposal values must be hashable.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.aggregate import aggregate_signatures, verify_aggregate
from repro.crypto.signatures import KeyRegistry, SignedMessage, SigningKey
from repro.graphs.knowledge_graph import ProcessId
from repro.pbft.messages import (
    Commit,
    GroupKey,
    NewView,
    PrePrepare,
    Prepare,
    PreparedCertificate,
    ViewChange,
)
from repro.pbft.quorum import classic_quorum, paper_quorum

SendFn = Callable[[ProcessId, Any], None]
#: Schedules a one-shot callback.  The return value may be a cancellable
#: handle (anything with a ``cancel()`` method, e.g. the simulator's
#: :class:`~repro.sim.engine.EventHandle`); when it is, the replica cancels
#: its outstanding view timers the moment it decides instead of letting
#: them fire as no-op events until the horizon.
ScheduleFn = Callable[[float, Callable[[], None]], Any]
DecideFn = Callable[[Any], None]


@dataclass
class PbftConfig:
    """Tuning of the inner consensus."""

    base_timeout: float = 20.0
    timeout_growth: float = 1.5
    quorum_rule: str = "paper"  # "paper" or "classic"
    max_views: int = 64
    #: Fold prepare quorums into one :class:`~repro.crypto.aggregate.AggregateTag`
    #: instead of carrying 2f+1 signed votes.  Off by default so committed
    #: trajectories stay byte-identical; opt in per scenario via
    #: ``protocol_options={"aggregate_quorum_certs": True}``.
    aggregate_certificates: bool = False

    def quorum(self, group_size: int, fault_threshold: int) -> int:
        if self.quorum_rule == "classic":
            return classic_quorum(group_size, fault_threshold)
        return paper_quorum(group_size, fault_threshold)

    def timeout_for_view(self, view: int) -> float:
        return self.base_timeout * (self.timeout_growth ** view)


def _prepare_payload(group: GroupKey, view: int, value: Any) -> tuple:
    """Canonical signed content of a prepare vote."""
    return ("prepare", tuple(sorted(group.members, key=repr)), view, value)


def _preprepare_payload(group: GroupKey, view: int, value: Any) -> tuple:
    """Canonical signed content of a leader proposal."""
    return ("pre-prepare", tuple(sorted(group.members, key=repr)), view, value)


@dataclass(slots=True)
class SingleShotPbft:
    """One consensus instance run by one (correct) member of the group."""

    process_id: ProcessId
    group: GroupKey
    #: This replica's estimate of the number of Byzantine group members
    #: (the known ``f`` in BFT-CUP mode, ``f_Gdi`` of the witness in
    #: BFT-CUPFT mode).  Used for the quorum threshold and the view-change
    #: join rule; other replicas may hold different estimates.
    fault_threshold: int
    proposal: Any
    key: SigningKey
    registry: KeyRegistry
    send: SendFn
    schedule: ScheduleFn
    on_decide: DecideFn
    config: PbftConfig = field(default_factory=PbftConfig)

    view: int = field(init=False, default=0)
    decided: bool = field(init=False, default=False)
    decided_value: Any = field(init=False, default=None)
    locked: PreparedCertificate | None = field(init=False, default=None)

    _members: list[ProcessId] = field(init=False)
    _quorum: int = field(init=False)
    _prepares: dict[tuple[int, Any], dict[ProcessId, SignedMessage]] = field(init=False, default_factory=dict)
    _commits: dict[tuple[int, Any], set[ProcessId]] = field(init=False, default_factory=dict)
    _view_changes: dict[int, dict[ProcessId, ViewChange]] = field(init=False, default_factory=dict)
    _prepared_sent: set[int] = field(init=False, default_factory=set)
    _commit_sent: set[int] = field(init=False, default_factory=set)
    _preprepare_seen: dict[int, Any] = field(init=False, default_factory=dict)
    _view_change_sent: set[int] = field(init=False, default_factory=set)
    _started: bool = field(init=False, default=False)
    _view_timers: list[Any] = field(init=False, default_factory=list)
    messages_sent: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._members = sorted(self.group.members, key=repr)
        if self.process_id not in self.group.members:
            raise ValueError("a replica must be a member of its group")
        self._quorum = self.config.quorum(len(self._members), self.fault_threshold)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def leader_of(self, view: int) -> ProcessId:
        """Round-robin leader rotation over the sorted membership."""
        return self._members[view % len(self._members)]

    @property
    def leader(self) -> ProcessId:
        return self.leader_of(self.view)

    def _broadcast(self, payload: Any) -> None:
        for member in self._members:
            if member != self.process_id:
                self.send(member, payload)
                self.messages_sent += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the instance: the view-0 leader proposes, everyone arms a timer."""
        if self._started:
            return
        self._started = True
        if self.leader == self.process_id:
            self._propose_in_view(0, self.proposal)
        self._arm_view_timer(0)

    def _arm_view_timer(self, view: int) -> None:
        timeout = self.config.timeout_for_view(view)
        # A view can legitimately be armed twice (once when the previous
        # view times out, once on entering it through a quorum of view
        # changes), so handles are tracked as a list — every one must be
        # cancelled on decide, and a fired timer prunes its own handle.
        handle_cell: list[Any] = []

        def fire() -> None:
            if handle_cell:
                try:
                    self._view_timers.remove(handle_cell[0])
                except ValueError:
                    pass
            self._on_view_timeout(view)

        handle = self.schedule(timeout, fire)
        # Remember cancellable handles so deciding can kill the timers for
        # good; schedule functions that return nothing keep the old
        # fire-and-no-op behaviour.
        if hasattr(handle, "cancel"):
            handle_cell.append(handle)
            self._view_timers.append(handle)

    def _cancel_view_timers(self) -> None:
        """Cancel every outstanding view timer (they are pointless once decided)."""
        timers, self._view_timers = self._view_timers, []
        for handle in timers:
            handle.cancel()

    def _propose_in_view(self, view: int, value: Any) -> None:
        signed = self.key.sign(_preprepare_payload(self.group, view, value))
        message = PrePrepare(group=self.group, view=view, value=value, signed=signed)
        self._broadcast(message)
        # The leader processes its own proposal locally.
        self.handle_pre_prepare(self.process_id, message)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def handle(self, sender: ProcessId, payload: Any) -> None:
        """Dispatch a PBFT message (ignores messages for other groups)."""
        if self.decided:
            # Late messages are harmless after the decision.
            return
        group = getattr(payload, "group", None)
        if group != self.group:
            return
        if sender not in self.group.members:
            return
        if isinstance(payload, PrePrepare):
            self.handle_pre_prepare(sender, payload)
        elif isinstance(payload, Prepare):
            self.handle_prepare(sender, payload)
        elif isinstance(payload, Commit):
            self.handle_commit(sender, payload)
        elif isinstance(payload, ViewChange):
            self.handle_view_change(sender, payload)
        elif isinstance(payload, NewView):
            self.handle_new_view(sender, payload)

    def handle_pre_prepare(self, sender: ProcessId, message: PrePrepare) -> None:
        if message.view < self.view or message.view in self._prepared_sent:
            return
        if sender != self.leader_of(message.view):
            return
        expected = _preprepare_payload(self.group, message.view, message.value)
        if message.signed.signer != sender or message.signed.message != expected:
            return
        if not self.registry.verify(message.signed):
            return
        if message.view in self._preprepare_seen and self._preprepare_seen[message.view] != message.value:
            # Equivocating leader: ignore the second proposal.
            return
        self._preprepare_seen[message.view] = message.value
        # Lock rule: once locked on a value, only prepare that value again.
        if self.locked is not None and self.locked.value != message.value:
            return
        self._send_prepare(message.view, message.value)

    def _send_prepare(self, view: int, value: Any) -> None:
        if view in self._prepared_sent:
            return
        self._prepared_sent.add(view)
        signed = self.key.sign(_prepare_payload(self.group, view, value))
        message = Prepare(group=self.group, view=view, value=value, voter=self.process_id, signed=signed)
        self._broadcast(message)
        self.handle_prepare(self.process_id, message)

    def handle_prepare(self, sender: ProcessId, message: Prepare) -> None:
        if message.view < self.view:
            return
        if message.voter != sender:
            return
        expected = _prepare_payload(self.group, message.view, message.value)
        if message.signed.signer != sender or message.signed.message != expected:
            return
        if not self.registry.verify(message.signed):
            return
        slot = self._prepares.setdefault((message.view, message.value), {})
        slot[sender] = message.signed
        if len(slot) >= self._quorum:
            self._on_prepared(message.view, message.value, slot)

    def _on_prepared(self, view: int, value: Any, votes: dict[ProcessId, SignedMessage]) -> None:
        if self.config.aggregate_certificates:
            certificate = PreparedCertificate(
                group=self.group,
                view=view,
                value=value,
                prepares=frozenset(),
                aggregate=aggregate_signatures(votes.values()),
            )
        else:
            certificate = PreparedCertificate(
                group=self.group, view=view, value=value, prepares=frozenset(votes.values())
            )
        if self.locked is None or view >= self.locked.view:
            self.locked = certificate
        if view not in self._commit_sent:
            self._commit_sent.add(view)
            message = Commit(group=self.group, view=view, value=value, voter=self.process_id)
            self._broadcast(message)
            self.handle_commit(self.process_id, message)

    def handle_commit(self, sender: ProcessId, message: Commit) -> None:
        if message.voter != sender:
            return
        voters = self._commits.setdefault((message.view, message.value), set())
        voters.add(sender)
        if len(voters) >= self._quorum and not self.decided:
            self._decide(message.value)

    def _decide(self, value: Any) -> None:
        self.decided = True
        self.decided_value = value
        # A decided replica never changes view again: cancelling the armed
        # view timers here (instead of letting each fire and no-op at its
        # exponentially growing deadline) is what lets member-heavy runs
        # drain right after the decision rather than ticking to the horizon.
        self._cancel_view_timers()
        self.on_decide(value)

    # ------------------------------------------------------------------
    # view changes
    # ------------------------------------------------------------------
    def _on_view_timeout(self, view: int) -> None:
        if self.decided or self.view > view:
            return
        if view + 1 >= self.config.max_views:
            return
        self._send_view_change(view + 1)
        self._arm_view_timer(view + 1)

    def _send_view_change(self, new_view: int) -> None:
        if new_view in self._view_change_sent:
            return
        self._view_change_sent.add(new_view)
        message = ViewChange(
            group=self.group, new_view=new_view, voter=self.process_id, prepared=self.locked
        )
        self._broadcast(message)
        self.handle_view_change(self.process_id, message)

    def _certificate_is_valid(self, certificate: PreparedCertificate | None) -> bool:
        if certificate is None:
            return True
        if certificate.group != self.group:
            return False
        expected = _prepare_payload(self.group, certificate.view, certificate.value)
        if certificate.aggregate is not None:
            # Aggregated form: one tag over the common prepare payload.  The
            # signer set is the voter set, so the quorum/membership checks
            # move onto it; distinctness is structural (it is a set).
            signers = certificate.aggregate.signers
            if len(signers) < self._quorum:
                return False
            if not signers <= self.group.members:
                return False
            return verify_aggregate(self.registry, expected, certificate.aggregate)
        if len(certificate.prepares) < self._quorum:
            return False
        voters: set[ProcessId] = set()
        prepares: list[SignedMessage] = []
        for signed in certificate.prepares:
            if signed.message != expected:
                return False
            if signed.signer not in self.group.members or signed.signer in voters:
                return False
            voters.add(signed.signer)
            prepares.append(signed)
        # All votes share one payload, so the batch costs one canonical
        # encoding (memoised) plus one HMAC per voter not already cached.
        return all(self.registry.verify_batch(prepares))

    def handle_view_change(self, sender: ProcessId, message: ViewChange) -> None:
        if message.voter != sender or message.new_view <= 0:
            return
        if not self._certificate_is_valid(message.prepared):
            return
        slot = self._view_changes.setdefault(message.new_view, {})
        slot[sender] = message
        # Join a view change supported by more than f other members.
        if (
            len(slot) > self.fault_threshold
            and message.new_view > self.view
            and message.new_view not in self._view_change_sent
        ):
            self._send_view_change(message.new_view)
        if len(slot) >= self._quorum and message.new_view > self.view:
            self._enter_view(message.new_view, slot)

    def _enter_view(self, new_view: int, votes: dict[ProcessId, ViewChange]) -> None:
        self.view = new_view
        self._arm_view_timer(new_view)
        if self.leader_of(new_view) != self.process_id:
            return
        best: PreparedCertificate | None = None
        for vote in votes.values():
            if vote.prepared is None:
                continue
            if best is None or vote.prepared.view > best.view:
                best = vote.prepared
        if self.locked is not None and (best is None or self.locked.view > best.view):
            best = self.locked
        value = self.proposal if best is None else best.value
        justification = frozenset(votes.values())
        announcement = NewView(group=self.group, view=new_view, value=value, justification=justification)
        self._broadcast(announcement)
        self._propose_in_view(new_view, value)

    def handle_new_view(self, sender: ProcessId, message: NewView) -> None:
        if sender != self.leader_of(message.view) or message.view < self.view:
            return
        valid_votes = {
            vote.voter: vote
            for vote in message.justification
            if isinstance(vote, ViewChange)
            and vote.group == self.group
            and vote.new_view == message.view
            and vote.voter in self.group.members
            and self._certificate_is_valid(vote.prepared)
        }
        if len(valid_votes) < self._quorum:
            return
        if message.view > self.view:
            self.view = message.view
            self._arm_view_timer(message.view)
        # Unlock if the justification's strongest certificate carries a
        # different value in a view at least as high as our lock.
        best: PreparedCertificate | None = None
        for vote in valid_votes.values():
            if vote.prepared is None:
                continue
            if best is None or vote.prepared.view > best.view:
                best = vote.prepared
        if (
            self.locked is not None
            and best is not None
            and best.value != self.locked.value
            and best.view >= self.locked.view
        ):
            self.locked = best
