"""Aggregate signatures: one tag standing in for a whole quorum.

A prepared certificate normally carries ``2f+1`` signed prepare votes and a
validator re-verifies each one.  Aggregation folds the constituent tags into
a single aggregate tag over the common message, so the certificate ships one
tag plus the signer set, and verification costs one canonical encoding plus
one expected tag per signer — no per-vote ``SignedMessage`` objects at all.

The scheme mirrors the BLS ``aggregate()`` idiom (optional ``blspy``, mock
fallback when the library is absent): when ``blspy`` is importable a ``bls``
scheme aggregates real BLS signatures derived from the constituent tags;
the default ``hmac-fold`` scheme is a pure-Python fold that needs no
dependency and stays *pinned as the default* so trajectories do not depend
on what happens to be installed.  Unforgeability holds in the simulation's
structural sense either way: producing the fold requires every constituent
tag, and each constituent tag requires the signer's secret.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.crypto.signatures import KeyRegistry, SignatureError, SignedMessage
from repro.graphs.knowledge_graph import ProcessId

try:  # pragma: no cover - blspy is optional and absent from the CI image
    from blspy import AugSchemeMPL, G2Element

    HAS_BLS = True
except ImportError:
    HAS_BLS = False


@dataclass(frozen=True, slots=True)
class AggregateTag:
    """One aggregated tag covering a set of signers over a common message."""

    scheme: str
    signers: frozenset[ProcessId]
    tag: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateTag(scheme={self.scheme!r}, signers={len(self.signers)})"


def _fold_hmac(tags: Sequence[str]) -> str:
    """Pure-Python fallback fold: a running SHA-256 over the sorted tags."""
    digest = hashlib.sha256(b"agg-hmac-fold:")
    for tag in tags:
        digest.update(tag.encode())
        digest.update(b";")
    return digest.hexdigest()


_SCHEMES: dict[str, Callable[[Sequence[str]], str]] = {"hmac-fold": _fold_hmac}

#: Pinned default so trajectories never depend on whether blspy is installed.
DEFAULT_SCHEME = "hmac-fold"

if HAS_BLS:  # pragma: no cover - exercised only where blspy is installed

    def _fold_bls(tags: Sequence[str]) -> str:
        """Real BLS aggregation: each 32-byte tag seeds a key whose signature
        over a fixed message joins the aggregate."""
        signatures: list[Any] = []
        for tag in tags:
            secret = AugSchemeMPL.key_gen(bytes.fromhex(tag)[:32])
            signatures.append(AugSchemeMPL.sign(secret, b"repro-aggregate"))
        return bytes(AugSchemeMPL.aggregate(signatures)).hex()

    _SCHEMES["bls"] = _fold_bls
    _ = G2Element  # re-exported shape check; keeps the import honest


def aggregate_signatures(
    signed: Iterable[SignedMessage], *, scheme: str = DEFAULT_SCHEME
) -> AggregateTag:
    """Fold signatures by distinct signers over one common message.

    Raises :class:`SignatureError` when the votes disagree on the message,
    when one signer contributed two different tags, when there is nothing to
    aggregate, or when the scheme is unknown.
    """
    fold = _SCHEMES.get(scheme)
    if fold is None:
        raise SignatureError(f"unknown aggregation scheme {scheme!r}")
    votes = list(signed)
    if not votes:
        raise SignatureError("cannot aggregate zero signatures")
    message = votes[0].message
    tags: dict[ProcessId, str] = {}
    for vote in votes:
        if vote.message != message:
            raise SignatureError("aggregation requires a common message across votes")
        known = tags.get(vote.signer)
        if known is not None and known != vote.tag:
            raise SignatureError(f"conflicting tags from signer {vote.signer!r}")
        tags[vote.signer] = vote.tag
    return AggregateTag(scheme=scheme, signers=frozenset(tags), tag=fold(sorted(tags.values())))


def verify_aggregate(registry: KeyRegistry, message: Any, aggregate: AggregateTag) -> bool:
    """Check that every claimed signer signed ``message`` under ``aggregate``.

    Recomputes each signer's expected tag over one shared canonical encoding
    and refolds; a bit-flipped aggregate tag, an unknown signer, or a tag
    set over a different message all fail.  Verified aggregates ride the
    registry's verified-signature LRU (keyed by the scheme + signer set)
    exactly like per-signature checks, so re-validating the same
    certificate is a dict probe.
    """
    fold = _SCHEMES.get(aggregate.scheme)
    if fold is None or not aggregate.signers:
        return False
    registry.verify_calls += 1
    encoded = registry.memo.encode(message)
    # Shares the registry's private verified-tag LRU; the composite key
    # cannot collide with per-signature ``(signer, tag)`` keys.
    cache_key = (("aggregate", aggregate.scheme, aggregate.signers), aggregate.tag)
    cached = registry._verified.get(cache_key)
    if cached is not None and cached == encoded:
        del registry._verified[cache_key]
        registry._verified[cache_key] = cached
        registry.verify_cache_hits += 1
        return True
    expected_tags: list[str] = []
    for signer in sorted(aggregate.signers, key=repr):
        expected = registry.expected_tag(signer, encoded)
        if expected is None:
            return False
        expected_tags.append(expected)
    if hmac.compare_digest(fold(sorted(expected_tags)), aggregate.tag):
        registry._cache_verified(cache_key, encoded)
        return True
    return False


__all__ = [
    "AggregateTag",
    "DEFAULT_SCHEME",
    "HAS_BLS",
    "aggregate_signatures",
    "verify_aggregate",
]
