"""Simulated digital signatures.

The authenticated BFT-CUP model (Section III) assumes each process can sign
messages and that signatures are unforgeable: a Byzantine process cannot
fabricate or alter the participant detector of a correct process.  The
simulation enforces unforgeability structurally: producing a signature
requires the private :class:`~repro.crypto.signatures.SigningKey`, which is
handed only to the owning process, and verification recomputes the tag from
the registry's copy of the secret.
"""

from repro.crypto.aggregate import (
    AggregateTag,
    aggregate_signatures,
    verify_aggregate,
)
from repro.crypto.signatures import (
    CanonicalMemo,
    KeyRegistry,
    SignatureError,
    SignedMessage,
    SigningKey,
)

__all__ = [
    "AggregateTag",
    "CanonicalMemo",
    "KeyRegistry",
    "SigningKey",
    "SignedMessage",
    "SignatureError",
    "aggregate_signatures",
    "verify_aggregate",
]
