"""Simulated unforgeable signatures.

Real deployments would use an asymmetric signature scheme; for the
simulation we only need the *abstraction*: ``sign`` can only be performed
by the key owner and ``verify`` rejects anything not produced by that owner.
Tags are deterministic HMAC-like digests over a canonical encoding of the
message, keyed by a per-process secret, so signed objects are hashable,
comparable and reproducible across runs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.graphs.knowledge_graph import ProcessId


class SignatureError(Exception):
    """Raised on invalid signing or verification attempts."""


def _canonical(message: Any) -> bytes:
    """Deterministically encode a message for signing.

    Supports the payload shapes used by the protocols: scalars, strings,
    tuples/lists, frozensets/sets (sorted by repr) and dataclass-like
    objects exposing ``__dict__``.
    """
    if isinstance(message, bytes):
        return b"b:" + message
    if isinstance(message, str):
        return b"s:" + message.encode()
    if isinstance(message, bool):
        return b"B:" + str(message).encode()
    if isinstance(message, (int, float)):
        return b"n:" + repr(message).encode()
    if message is None:
        return b"none"
    if isinstance(message, (frozenset, set)):
        parts = sorted(_canonical(item) for item in message)
        return b"{" + b",".join(parts) + b"}"
    if isinstance(message, (tuple, list)):
        return b"[" + b",".join(_canonical(item) for item in message) + b"]"
    if isinstance(message, dict):
        parts = sorted(_canonical(key) + b"=" + _canonical(value) for key, value in message.items())
        return b"d{" + b",".join(parts) + b"}"
    if hasattr(message, "__dataclass_fields__"):
        parts = [
            name.encode() + b"=" + _canonical(getattr(message, name))
            for name in sorted(message.__dataclass_fields__)
        ]
        return b"dc:" + type(message).__name__.encode() + b"(" + b",".join(parts) + b")"
    return b"r:" + repr(message).encode()


@dataclass(frozen=True, slots=True)
class SignedMessage:
    """A message together with the identity of its signer and the tag."""

    signer: ProcessId
    message: Any
    tag: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignedMessage(signer={self.signer!r}, message={self.message!r})"


class SigningKey:
    """The private signing capability of a single process.

    Only the process that owns the key can produce signatures under its
    identity; the key object is created by the :class:`KeyRegistry` and
    handed to the owning process at setup time.
    """

    __slots__ = ("owner", "_secret")

    def __init__(self, owner: ProcessId, secret: bytes) -> None:
        self.owner = owner
        self._secret = secret

    def sign(self, message: Any) -> SignedMessage:
        """Sign ``message`` under the owner's identity."""
        tag = hmac.new(self._secret, _canonical(message), hashlib.sha256).hexdigest()
        return SignedMessage(signer=self.owner, message=message, tag=tag)


class KeyRegistry:
    """Key generation and signature verification for a set of processes."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._secrets: dict[ProcessId, bytes] = {}

    def generate(self, owner: ProcessId) -> SigningKey:
        """Create (or return) the signing key of ``owner``."""
        if owner not in self._secrets:
            material = f"{self._seed}:{owner!r}".encode()
            self._secrets[owner] = hashlib.sha256(material).digest()
        return SigningKey(owner, self._secrets[owner])

    def knows(self, owner: ProcessId) -> bool:
        """Whether a key has been generated for ``owner``."""
        return owner in self._secrets

    def verify(self, signed: SignedMessage) -> bool:
        """Return ``True`` when ``signed`` was produced by its claimed signer."""
        secret = self._secrets.get(signed.signer)
        if secret is None:
            return False
        expected = hmac.new(secret, _canonical(signed.message), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signed.tag)

    def require_valid(self, signed: SignedMessage) -> None:
        """Raise :class:`SignatureError` when the signature does not verify."""
        if not self.verify(signed):
            raise SignatureError(f"invalid signature claimed by {signed.signer!r}")
