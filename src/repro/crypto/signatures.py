"""Simulated unforgeable signatures.

Real deployments would use an asymmetric signature scheme; for the
simulation we only need the *abstraction*: ``sign`` can only be performed
by the key owner and ``verify`` rejects anything not produced by that owner.
Tags are deterministic HMAC-like digests over a canonical encoding of the
message, keyed by a per-process secret, so signed objects are hashable,
comparable and reproducible across runs.

Fast path
---------

Verification is deterministic (same registry, same message, same tag →
same answer), which makes two caches trajectory-neutral:

* a :class:`CanonicalMemo` keyed by *object identity* skips the recursive
  canonical re-encoding of hot payloads (the same ``PdRecord`` or prepare
  tuple is verified by every receiver in a run, and in the simulation the
  receivers share the sender's object);
* a tag-keyed verified-signature LRU in :class:`KeyRegistry` skips the
  HMAC for ``(signer, tag)`` pairs that already verified — but only after
  re-checking that the canonical encoding matches the one that verified,
  so a replayed tag under a *different* message still falls through to the
  (failing) full check.

Both caches count their hits (:attr:`KeyRegistry.verify_calls`,
:attr:`KeyRegistry.verify_cache_hits`, :attr:`KeyRegistry.canonical_cache_hits`)
so harnesses can surface how much work the fast path removed.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.graphs.knowledge_graph import ProcessId


class SignatureError(Exception):
    """Raised on invalid signing or verification attempts."""


def _canonical(message: Any) -> bytes:
    """Deterministically encode a message for signing.

    Supports the payload shapes used by the protocols: scalars, strings,
    tuples/lists, frozensets/sets (sorted by repr) and dataclass-like
    objects exposing ``__dict__``.
    """
    if isinstance(message, bytes):
        return b"b:" + message
    if isinstance(message, str):
        return b"s:" + message.encode()
    if isinstance(message, bool):
        return b"B:" + str(message).encode()
    if isinstance(message, (int, float)):
        return b"n:" + repr(message).encode()
    if message is None:
        return b"none"
    if isinstance(message, (frozenset, set)):
        parts = sorted(_canonical(item) for item in message)
        return b"{" + b",".join(parts) + b"}"
    if isinstance(message, (tuple, list)):
        return b"[" + b",".join(_canonical(item) for item in message) + b"]"
    if isinstance(message, dict):
        parts = sorted(_canonical(key) + b"=" + _canonical(value) for key, value in message.items())
        return b"d{" + b",".join(parts) + b"}"
    if hasattr(message, "__dataclass_fields__"):
        parts = [
            name.encode() + b"=" + _canonical(getattr(message, name))
            for name in sorted(message.__dataclass_fields__)
        ]
        return b"dc:" + type(message).__name__.encode() + b"(" + b",".join(parts) + b")"
    return b"r:" + repr(message).encode()


class CanonicalMemo:
    """Object-identity memo for :func:`_canonical` over hot payloads.

    Entries are keyed by ``id(message)`` and hold a strong reference to the
    message, so a memoised object cannot be collected (and its id reused by
    a different object) while its entry lives.  Only container payloads —
    dataclass instances and tuples, the shapes the protocols sign — are
    memoised; scalars encode faster than a dict probe.

    The memo is owned by one :class:`KeyRegistry` (one per run), so hit
    counts are per-run deterministic and never contaminated by residue from
    earlier runs in the same worker process.  Eviction is FIFO and bounded.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: int = 16384) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        #: ``0`` disables memoisation entirely (every encode recurses); the
        #: benchmarks use that to measure the fast path against a cache-less
        #: registry on identical runs.
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[int, tuple[Any, bytes]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def encode(self, message: Any) -> bytes:
        """Encode ``message``, memoised by identity for container payloads."""
        if self.max_entries == 0 or not (
            isinstance(message, tuple) or hasattr(message, "__dataclass_fields__")
        ):
            return _canonical(message)
        key = id(message)
        hit = self._entries.get(key)
        if hit is not None and hit[0] is message:
            self.hits += 1
            return hit[1]
        self.misses += 1
        encoded = _canonical(message)
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = (message, encoded)
        return encoded

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True, slots=True)
class SignedMessage:
    """A message together with the identity of its signer and the tag."""

    signer: ProcessId
    message: Any
    tag: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignedMessage(signer={self.signer!r}, message={self.message!r})"


class SigningKey:
    """The private signing capability of a single process.

    Only the process that owns the key can produce signatures under its
    identity; the key object is created by the :class:`KeyRegistry` and
    handed to the owning process at setup time.
    """

    __slots__ = ("owner", "_secret", "_memo")

    def __init__(self, owner: ProcessId, secret: bytes, memo: CanonicalMemo | None = None) -> None:
        self.owner = owner
        self._secret = secret
        self._memo = memo

    def sign(self, message: Any) -> SignedMessage:
        """Sign ``message`` under the owner's identity."""
        encoded = self._memo.encode(message) if self._memo is not None else _canonical(message)
        tag = hmac.new(self._secret, encoded, hashlib.sha256).hexdigest()
        return SignedMessage(signer=self.owner, message=message, tag=tag)


class KeyRegistry:
    """Key generation and signature verification for a set of processes.

    One registry is created per run and shared by all nodes, so its
    verified-signature LRU deduplicates the ``n``-receivers-verify-one-tag
    pattern across the whole run: the first receiver pays the HMAC, the
    rest pay a dict probe plus a (memoised) canonical comparison.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        verified_cache_entries: int = 8192,
        canonical_memo_entries: int = 16384,
    ) -> None:
        self._seed = seed
        self._secrets: dict[ProcessId, bytes] = {}
        self.memo = CanonicalMemo(canonical_memo_entries)
        self._verified_cache_entries = verified_cache_entries
        #: ``(signer, tag) → canonical encoding that verified``.  A hit must
        #: re-check the encoding, so replaying a valid tag under a different
        #: message cannot ride the cache.
        self._verified: dict[tuple[ProcessId, str], bytes] = {}
        self.verify_calls = 0
        self.verify_cache_hits = 0

    @property
    def canonical_cache_hits(self) -> int:
        """Hits of the registry's canonical-encoding memo (sign + verify)."""
        return self.memo.hits

    def generate(self, owner: ProcessId) -> SigningKey:
        """Create (or return) the signing key of ``owner``."""
        if owner not in self._secrets:
            material = f"{self._seed}:{owner!r}".encode()
            self._secrets[owner] = hashlib.sha256(material).digest()
        return SigningKey(owner, self._secrets[owner], memo=self.memo)

    def knows(self, owner: ProcessId) -> bool:
        """Whether a key has been generated for ``owner``."""
        return owner in self._secrets

    def expected_tag(self, signer: ProcessId, encoded: bytes) -> str | None:
        """The tag ``signer`` would produce over ``encoded``, if its key is known."""
        secret = self._secrets.get(signer)
        if secret is None:
            return None
        return hmac.new(secret, encoded, hashlib.sha256).hexdigest()

    def _cache_verified(self, key: tuple[ProcessId, str], encoded: bytes) -> None:
        if self._verified_cache_entries <= 0:
            return  # cache disabled: every verification pays the HMAC
        while len(self._verified) >= self._verified_cache_entries:
            self._verified.pop(next(iter(self._verified)))
        self._verified[key] = encoded

    def _verify_encoded(self, signed: SignedMessage, encoded: bytes) -> bool:
        """Core check over an already-encoded message (counts one call)."""
        self.verify_calls += 1
        secret = self._secrets.get(signed.signer)
        if secret is None:
            return False
        key = (signed.signer, signed.tag)
        cached = self._verified.get(key)
        if cached is not None and cached == encoded:
            # LRU touch: move the entry to the most-recent end.
            del self._verified[key]
            self._verified[key] = cached
            self.verify_cache_hits += 1
            return True
        expected = hmac.new(secret, encoded, hashlib.sha256).hexdigest()
        if hmac.compare_digest(expected, signed.tag):
            self._cache_verified(key, encoded)
            return True
        return False

    def verify(self, signed: SignedMessage) -> bool:
        """Return ``True`` when ``signed`` was produced by its claimed signer."""
        return self._verify_encoded(signed, self.memo.encode(signed.message))

    def verify_batch(self, entries: Iterable[SignedMessage]) -> list[bool]:
        """Verify many signatures at once; returns per-entry validity in order.

        Entries are grouped by signer and each distinct message object is
        encoded once (the identity memo extends "once" across batches and
        across the per-signature path).  Within a signer's group, entries
        carrying the same encoding share one HMAC computation, so a quorum
        certificate whose votes all cover the same payload costs one
        encoding plus one HMAC per distinct voter.  Counters advance exactly
        as ``len(entries)`` per-signature calls would.
        """
        entries = list(entries)
        results = [False] * len(entries)
        by_signer: dict[ProcessId, list[int]] = {}
        for index, entry in enumerate(entries):
            by_signer.setdefault(entry.signer, []).append(index)
        for signer, indices in by_signer.items():  # insertion order: deterministic for a given input order
            secret = self._secrets.get(signer)
            computed: dict[bytes, str] = {}
            for index in indices:
                entry = entries[index]
                self.verify_calls += 1
                if secret is None:
                    continue
                encoded = self.memo.encode(entry.message)
                key = (signer, entry.tag)
                cached = self._verified.get(key)
                if cached is not None and cached == encoded:
                    del self._verified[key]
                    self._verified[key] = cached
                    self.verify_cache_hits += 1
                    results[index] = True
                    continue
                expected = computed.get(encoded)
                if expected is None:
                    expected = hmac.new(secret, encoded, hashlib.sha256).hexdigest()
                    computed[encoded] = expected
                if hmac.compare_digest(expected, entry.tag):
                    self._cache_verified(key, encoded)
                    results[index] = True
        return results

    def require_valid(self, signed: SignedMessage) -> None:
        """Raise :class:`SignatureError` when the signature does not verify."""
        if not self.verify(signed):
            raise SignatureError(f"invalid signature claimed by {signed.signer!r}")

    def counters(self) -> dict[str, int]:
        """Snapshot of the fast-path counters (surfaced by the harnesses)."""
        return {
            "verify_calls": self.verify_calls,
            "verify_cache_hits": self.verify_cache_hits,
            "canonical_cache_hits": self.canonical_cache_hits,
        }


__all__ = [
    "CanonicalMemo",
    "KeyRegistry",
    "SignatureError",
    "SignedMessage",
    "SigningKey",
]
