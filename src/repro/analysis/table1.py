"""Table I: the (im)possibility of solving BFT consensus under different models.

The paper's Table I has nine cells: three knowledge models (known ``n`` and
``f``; unknown ``n``, known ``f``; unknown ``n`` and ``f``) crossed with
three communication models (synchronous, partially synchronous,
asynchronous).  The first two rows are possible (✓) and the asynchronous row
is impossible (✗, by FLP).

This module realises each cell as a concrete simulated workload:

* *Known n, known f* -- a complete knowledge connectivity graph (every
  process knows every other) run with the BFT-CUP protocol.
* *Unknown n, known f* -- the Fig. 1b graph (partial knowledge) run with the
  BFT-CUP protocol.
* *Unknown n, unknown f* -- the Fig. 4b graph (extended k-OSR) run with the
  BFT-CUPFT protocol.
* *Synchronous / partially synchronous* -- the corresponding synchrony
  models of :mod:`repro.sim.synchrony`.
* *Asynchronous* -- no GST: the adversarial scheduler withholds every
  message sent by one correct sink/core member forever (admissible in an
  asynchronous system), which leaves only ``2f`` correct members reachable
  and therefore prevents termination -- the empirical face of the FLP-style
  ✗ entries.

The benchmark prints the same 3x3 matrix as the paper; ✓ means every correct
process decided and all consensus properties held, ✗ means the run did not
terminate within the horizon (or a property was violated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.schedule import DelayRule, NetworkSchedule
from repro.adversary.spec import FaultSpec
from repro.analysis.harness import RunConfig, RunResult, run_consensus
from repro.analysis.tables import render_table
from repro.core.config import ProtocolConfig
from repro.graphs.figures import figure_1b, figure_4b
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId
from repro.sim.synchrony import (
    AsynchronousModel,
    PartialSynchronyModel,
    SynchronousModel,
)

KNOWLEDGE_MODELS = ("known n, known f", "unknown n, known f", "unknown n, unknown f")
COMMUNICATION_MODELS = ("synchronous", "partially synchronous", "asynchronous")


@dataclass(frozen=True)
class TableCell:
    """One cell of the Table I reproduction."""

    communication: str
    knowledge: str
    solved: bool
    expected_solved: bool
    result: RunResult

    @property
    def matches_paper(self) -> bool:
        return self.solved == self.expected_solved


def _complete_graph(size: int = 4) -> KnowledgeGraph:
    graph = KnowledgeGraph()
    nodes = list(range(1, size + 1))
    for source in nodes:
        for target in nodes:
            if source != target:
                graph.add_edge(source, target)
    return graph


def _knowledge_workload(knowledge: str) -> tuple[KnowledgeGraph, dict[ProcessId, FaultSpec], ProtocolConfig, frozenset[ProcessId]]:
    """Return (graph, faulty, protocol, sink_or_core_of_safe_graph) for a knowledge model."""
    if knowledge == "known n, known f":
        graph = _complete_graph(4)
        faulty = {4: FaultSpec.silent()}
        protocol = ProtocolConfig.bft_cup(1)
        safe_group = frozenset({1, 2, 3})
    elif knowledge == "unknown n, known f":
        scenario = figure_1b()
        graph = scenario.graph
        faulty = {process: FaultSpec.silent() for process in scenario.faulty}
        protocol = ProtocolConfig.bft_cup(scenario.fault_threshold)
        safe_group = scenario.expected_safe_sink
    elif knowledge == "unknown n, unknown f":
        scenario = figure_4b()
        graph = scenario.graph
        faulty = {process: FaultSpec.silent() for process in scenario.faulty}
        protocol = ProtocolConfig.bft_cupft()
        safe_group = scenario.expected_safe_core
    else:
        raise ValueError(f"unknown knowledge model {knowledge!r}")
    return graph, faulty, protocol, safe_group


def run_cell(
    communication: str,
    knowledge: str,
    *,
    seed: int = 0,
    horizon: float = 3_000.0,
) -> TableCell:
    """Run the workload of one Table I cell and report whether consensus was solved."""
    graph, faulty, protocol, safe_group = _knowledge_workload(knowledge)

    schedule = None
    if communication == "synchronous":
        synchrony = SynchronousModel(delta=1.0)
        expected = True
    elif communication == "partially synchronous":
        synchrony = PartialSynchronyModel(gst=40.0, delta=1.0)
        expected = True
    elif communication == "asynchronous":
        # The asynchronous adversary withholds every message sent by one
        # correct sink/core member forever.  With a sink of exactly 2f+1
        # correct processes this prevents the inner consensus quorum, so no
        # correct process can ever decide -- which is admissible because an
        # asynchronous system has no GST (the schedule validator imposes no
        # delivery contract under the asynchronous model).
        victim = min(safe_group, key=repr)
        synchrony = AsynchronousModel(delta=1.0, starvation_probability=0.0)
        schedule = NetworkSchedule(
            name="starve-victim",
            rules=(
                DelayRule(
                    src=frozenset({victim}),
                    dst=frozenset(graph.processes) - {victim},
                ),
            ),
        )
        expected = False
    else:
        raise ValueError(f"unknown communication model {communication!r}")

    config = RunConfig(
        graph=graph,
        protocol=protocol,
        faulty=faulty,
        synchrony=synchrony,
        schedule=schedule,
        seed=seed,
        horizon=horizon,
    )
    result = run_consensus(config)
    return TableCell(
        communication=communication,
        knowledge=knowledge,
        solved=result.consensus_solved,
        expected_solved=expected,
        result=result,
    )


def build_table(seed: int = 0, horizon: float = 3_000.0) -> list[TableCell]:
    """Run all nine cells of Table I."""
    cells = []
    for communication in COMMUNICATION_MODELS:
        for knowledge in KNOWLEDGE_MODELS:
            cells.append(run_cell(communication, knowledge, seed=seed, horizon=horizon))
    return cells


def format_table(cells: list[TableCell]) -> str:
    """Render the 3x3 matrix in the same layout as the paper's Table I."""
    by_key = {(cell.communication, cell.knowledge): cell for cell in cells}
    rows = []
    for communication in COMMUNICATION_MODELS:
        row = [communication]
        for knowledge in KNOWLEDGE_MODELS:
            cell = by_key[(communication, knowledge)]
            mark = "✓" if cell.solved else "✗"
            expected = "✓" if cell.expected_solved else "✗"
            row.append(f"{mark} (paper: {expected})")
        rows.append(row)
    headers = ["communication \\ knowledge", *KNOWLEDGE_MODELS]
    return render_table(headers, rows, title="Table I: deterministic BFT consensus (measured vs paper)")
