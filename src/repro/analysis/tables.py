"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None) -> str:
    """Render a simple aligned ASCII table."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
