"""The run-to-decision experiment harness.

Given a knowledge connectivity graph, a fault assignment (which processes
are Byzantine and how they behave), a protocol configuration and a synchrony
model, :func:`run_consensus` builds the whole simulated system, lets every
process propose, runs the simulator until every correct process decided (or
the horizon is hit), and reports the consensus properties plus message and
latency statistics.

This is the single entry point used by the examples, the integration tests
and every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.adversary.nodes import build_faulty_node
from repro.adversary.schedule import NetworkSchedule
from repro.adversary.spec import FaultSpec
from repro.analysis.properties import ConsensusProperties, check_properties
from repro.core.config import ProtocolConfig
from repro.core.node import ConsensusNode
from repro.core.seeding import derive_seed
from repro.crypto.signatures import KeyRegistry
from repro.graphs.knowledge_graph import KnowledgeGraph, ProcessId
from repro.sim.process import Process
from repro.sim.synchrony import SynchronyModel
from repro.sim.tracing import SimulationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime
    from repro.sim.engine import Simulator
    from repro.sim.network import Network


@dataclass
class RunConfig:
    """Everything needed to simulate one consensus execution."""

    graph: KnowledgeGraph
    protocol: ProtocolConfig
    #: Mapping from faulty process id to its behaviour.  Processes not
    #: listed here are correct.
    faulty: dict[ProcessId, FaultSpec] = field(default_factory=dict)
    #: Proposed values; processes without an entry propose ``f"value-of-{id}"``.
    proposals: dict[ProcessId, Any] = field(default_factory=dict)
    synchrony: SynchronyModel | None = None
    #: Declarative network fault schedule (delays/partitions/crashes),
    #: validated against the synchrony model and installed as named rules
    #: on the network before the run starts.
    schedule: NetworkSchedule | None = None
    seed: int = 0
    #: Simulation horizon (virtual time).  Runs that do not terminate by the
    #: horizon are reported with ``termination=False``.
    horizon: float = 5_000.0
    max_events: int = 2_000_000
    #: Restrict which processes call ``propose``; ``None`` means everyone.
    participants: frozenset[ProcessId] | None = None
    #: Heap-compaction threshold forwarded to the :class:`Simulator`
    #: (``None`` keeps the engine default).  Purely an engine tuning knob:
    #: trajectories are identical for every value.
    compaction_min_queue: int | None = None

    def proposal_of(self, process: ProcessId) -> Any:
        return self.proposals.get(process, f"value-of-{process!r}")


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    config: RunConfig
    properties: ConsensusProperties
    trace: SimulationTrace
    correct: frozenset[ProcessId]
    decisions: dict[ProcessId, Any]
    decision_times: dict[ProcessId, float]
    identified: dict[ProcessId, frozenset[ProcessId]]
    identification_times: dict[ProcessId, float]
    estimated_fault_thresholds: dict[ProcessId, int | None]
    virtual_duration: float
    messages_sent: int
    events_processed: int
    #: Engine diagnostics: heap compactions and the pending-event peak.
    compactions: int = 0
    pending_peak: int = 0
    #: Locator work over the correct consensus nodes: searches actually
    #: consulted (memo hits + misses, which is deterministic per run,
    #: unlike the hit/miss split) and locate calls skipped by the
    #: incremental-analysis gates.
    sink_searches: int = 0
    search_skips: int = 0
    #: Crypto fast-path counters from the run's :class:`KeyRegistry`:
    #: signature verifications requested, how many were answered by the
    #: verified-tag LRU, and hits of the canonical-encoding identity memo
    #: (sign + verify).  All three are per-run deterministic.
    verify_calls: int = 0
    verify_cache_hits: int = 0
    canonical_cache_hits: int = 0
    #: Which runtime executed the run: ``"sim"`` (discrete-event engine) or
    #: ``"live"`` (the asyncio socket runtime).
    runtime_name: str = "sim"
    #: Live-runtime counters (:class:`repro.runtime.asyncio_runtime.LiveRunStats`)
    #: when the run executed over real sockets; ``None`` for simulated runs.
    live: Any = None

    @property
    def consensus_solved(self) -> bool:
        return self.properties.consensus_solved

    @property
    def agreement(self) -> bool:
        return self.properties.agreement

    @property
    def termination(self) -> bool:
        return self.properties.termination

    @property
    def validity(self) -> bool:
        return self.properties.validity

    def latency(self) -> float | None:
        """Virtual time until the last correct decision, or ``None``."""
        if not self.decision_times:
            return None
        return max(self.decision_times.values())

    def identification_latency(self) -> float | None:
        """Virtual time until the last correct sink/core identification."""
        times = [self.identification_times[p] for p in self.identification_times if p in self.correct]
        return max(times) if times else None

    def summary(self) -> dict[str, Any]:
        """Compact dictionary used by the benchmarks to print result rows."""
        summary = {
            "correct": len(self.correct),
            "faulty": len(self.config.faulty),
            "terminated": self.termination,
            "agreement": self.agreement,
            "validity": self.validity,
            "distinct_decisions": len(self.properties.distinct_decided_values),
            "messages": self.messages_sent,
            "latency": self.latency(),
            "identification_latency": self.identification_latency(),
            "events": self.events_processed,
            "compactions": self.compactions,
            "pending_peak": self.pending_peak,
            "sink_searches": self.sink_searches,
            "search_skips": self.search_skips,
            "verify_calls": self.verify_calls,
            "verify_cache_hits": self.verify_cache_hits,
            "canonical_cache_hits": self.canonical_cache_hits,
        }
        if self.live is not None:
            # Live-only keys: simulated summaries (and the committed BENCH
            # baselines built from them) stay byte-identical.
            summary["runtime"] = self.runtime_name
            summary.update(self.live.summary_entries())
        return summary


def build_protocol_nodes(
    config: RunConfig,
    runtime: "Runtime",
    registry: KeyRegistry,
    trace: SimulationTrace,
) -> dict[ProcessId, Process]:
    """Instantiate every process of the run (correct and faulty) on ``runtime``.

    This is the runtime-agnostic builder: the discrete-event harness below
    and the live harness (:func:`repro.runtime.harness.run_live_consensus`)
    both call it, so a run's node population is identical on both substrates.
    """
    nodes: dict[ProcessId, Process] = {}
    for process_id in sorted(config.graph.processes, key=repr):
        pd = config.graph.participant_detector(process_id)
        key = registry.generate(process_id)
        spec = config.faulty.get(process_id)
        if spec is None:
            nodes[process_id] = ConsensusNode(
                process_id=process_id,
                participant_detector=pd,
                runtime=runtime,
                registry=registry,
                key=key,
                config=config.protocol,
                trace=trace,
            )
        else:
            nodes[process_id] = build_faulty_node(
                spec,
                process_id=process_id,
                participant_detector=pd,
                runtime=runtime,
                registry=registry,
                key=key,
                config=config.protocol,
                trace=trace,
            )
    return nodes


def build_nodes(
    config: RunConfig,
    simulator: "Simulator",
    network: "Network",
    registry: KeyRegistry,
    trace: SimulationTrace,
) -> dict[ProcessId, Process]:
    """Instantiate every process of a *simulated* run (correct and faulty)."""
    from repro.runtime.sim import SimRuntime

    return build_protocol_nodes(config, SimRuntime(simulator, network), registry, trace)


def run_consensus(config: RunConfig) -> RunResult:
    """Simulate one execution and evaluate the consensus properties."""
    # Deferred: repro.runtime.fidelity imports this module, so a module-level
    # runtime import would be circular.
    from repro.runtime.sim import build_sim_runtime

    trace = SimulationTrace()
    # Independent substreams: the network delay draws and the key material
    # must not share a raw seed, otherwise changing how many keys are
    # generated (or the key derivation itself) silently reshuffles the
    # network schedule of every experiment.
    runtime = build_sim_runtime(
        max_time=config.horizon,
        max_events=config.max_events,
        compaction_min_queue=config.compaction_min_queue,
        synchrony=config.synchrony,
        trace=trace,
        network_seed=derive_seed(config.seed, "network"),
        faulty=frozenset(config.faulty),
    )
    simulator = runtime.simulator
    registry = KeyRegistry(seed=derive_seed(config.seed, "keys"))
    nodes = build_protocol_nodes(config, runtime, registry, trace)
    if config.schedule is not None:
        # Installed after registration so symbolic rule targets ("*",
        # "correct", "faulty") resolve against the full membership; the
        # schedule validates itself against the synchrony model here.
        config.schedule.install(runtime.network)

    correct = frozenset(config.graph.processes - set(config.faulty))
    participants = (
        config.graph.processes if config.participants is None else config.participants
    )
    for process_id, node in nodes.items():
        if process_id not in participants:
            continue
        proposer = getattr(node, "propose", None)
        if proposer is not None:
            proposer(config.proposal_of(process_id))

    # The stop predicate runs between every two events, so it must be O(1):
    # scanning all nodes per event is quadratic at large n.  A node flips
    # ``decided`` and calls ``trace.on_decision`` in the same event callback
    # (ConsensusNode._decide), so counting first decisions of correct nodes
    # as they are recorded observes exactly the same predicate value between
    # events as scanning ``node.decided`` over every correct node did.
    undecided_correct = set(correct)
    record_decision = trace.on_decision

    def counting_on_decision(process_id: ProcessId, value: Any, time: float) -> None:
        record_decision(process_id, value, time)
        undecided_correct.discard(process_id)

    trace.on_decision = counting_on_decision  # type: ignore[method-assign]

    def all_correct_decided() -> bool:
        return not undecided_correct

    try:
        simulator.run(until=all_correct_decided)
    finally:
        del trace.on_decision  # restore the plain recording method

    return collect_run_result(
        config,
        nodes,
        correct,
        trace,
        virtual_duration=simulator.now,
        events_processed=simulator.processed_events,
        compactions=simulator.compactions,
        pending_peak=simulator.pending_peak,
        registry=registry,
    )


def collect_run_result(
    config: RunConfig,
    nodes: dict[ProcessId, Process],
    correct: frozenset[ProcessId],
    trace: SimulationTrace,
    *,
    virtual_duration: float,
    events_processed: int,
    compactions: int = 0,
    pending_peak: int = 0,
    registry: KeyRegistry | None = None,
    runtime_name: str = "sim",
    live: Any = None,
) -> RunResult:
    """Evaluate the consensus properties of a finished run and package them.

    Shared between the discrete-event harness above and the live harness
    (:func:`repro.runtime.harness.run_live_consensus`): the property checks
    and statistics are substrate-independent, they only read node state and
    the trace.
    """
    decisions: dict[ProcessId, Any] = {}
    decision_times: dict[ProcessId, float] = {}
    identified: dict[ProcessId, frozenset[ProcessId]] = {}
    identification_times: dict[ProcessId, float] = {}
    estimated: dict[ProcessId, int | None] = {}
    for process_id in sorted(correct, key=repr):
        node = nodes[process_id]
        if isinstance(node, ConsensusNode):
            if node.decided:
                decisions[process_id] = node.value
                decision_times[process_id] = node.decided_at if node.decided_at is not None else 0.0
            if node.identified_members is not None:
                identified[process_id] = node.identified_members
                identification_times[process_id] = (
                    node.identified_at if node.identified_at is not None else 0.0
                )
            estimated[process_id] = node.estimated_fault_threshold

    sink_searches = 0
    search_skips = 0
    for process_id in sorted(correct, key=repr):
        node = nodes[process_id]
        if isinstance(node, ConsensusNode):
            sink_searches += node.locator.searches
            search_skips += node.locator.skips

    proposals = {
        process_id: config.proposal_of(process_id) for process_id in config.graph.processes
    }
    # Faulty "wrong value" processes can inject their poison value, which is
    # still a proposed value in the Byzantine validity sense.
    for process_id, spec in config.faulty.items():
        if spec.behaviour in {"wrong_value", "equivocating_leader"}:
            proposals[f"poison::{process_id!r}"] = spec.poison_value

    properties = check_properties(
        correct=correct,
        proposals=proposals,
        decisions=decisions,
        identified=identified,
    )
    return RunResult(
        config=config,
        properties=properties,
        trace=trace,
        correct=correct,
        decisions=decisions,
        decision_times=decision_times,
        identified=identified,
        identification_times=identification_times,
        estimated_fault_thresholds=estimated,
        virtual_duration=virtual_duration,
        messages_sent=trace.messages_sent,
        events_processed=events_processed,
        compactions=compactions,
        pending_peak=pending_peak,
        sink_searches=sink_searches,
        search_skips=search_skips,
        verify_calls=registry.verify_calls if registry is not None else 0,
        verify_cache_hits=registry.verify_cache_hits if registry is not None else 0,
        canonical_cache_hits=registry.canonical_cache_hits if registry is not None else 0,
        runtime_name=runtime_name,
        live=live,
    )
