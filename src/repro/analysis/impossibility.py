"""The Theorem 7 impossibility experiment (Fig. 2).

Theorem 7 shows that a knowledge connectivity graph satisfying the BFT-CUP
requirements is *not* enough to solve consensus when the fault threshold is
unknown.  The proof builds three executions:

* execution A -- system A (Fig. 2a, processes 1-4, process 4 crashed/silent)
  where the correct processes must decide their common initial value ``v``;
* execution B -- system B (Fig. 2b, processes 5-8, process 5 crashed/silent)
  where they must decide ``u``;
* execution AB -- the joint system (Fig. 2c, all processes correct) where the
  messages between the two groups are delayed beyond both previous decision
  times; processes 1-3 cannot distinguish AB from A and processes 6-8 cannot
  distinguish AB from B, so they decide ``v`` and ``u`` respectively --
  violating Agreement.

:func:`run_impossibility_experiment` replays exactly those three executions
with the BFT-CUPFT protocol (no process is given the fault threshold) and
reports the observed decisions, demonstrating the violation empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.schedule import DelayRule, NetworkSchedule
from repro.adversary.spec import FaultSpec
from repro.analysis.harness import RunConfig, RunResult, run_consensus
from repro.core.config import ProtocolConfig
from repro.graphs.figures import figure_2a, figure_2b, figure_2c
from repro.sim.synchrony import PartialSynchronyModel

GROUP_A = frozenset({1, 2, 3, 4})
GROUP_B = frozenset({5, 6, 7, 8})


@dataclass
class ImpossibilityOutcome:
    """The three executions of the Theorem 7 argument and their verdicts."""

    execution_a: RunResult
    execution_b: RunResult
    execution_ab: RunResult

    @property
    def a_decided_v(self) -> bool:
        return set(self.execution_a.decisions.values()) == {"v"}

    @property
    def b_decided_u(self) -> bool:
        return set(self.execution_b.decisions.values()) == {"u"}

    @property
    def ab_agreement_violated(self) -> bool:
        return not self.execution_ab.properties.agreement

    @property
    def demonstrates_theorem(self) -> bool:
        """The impossibility is demonstrated when A decides v, B decides u and AB disagrees."""
        return self.a_decided_v and self.b_decided_u and self.ab_agreement_violated


def _run_single_system(scenario, value: str, seed: int) -> RunResult:
    proposals = {process: value for process in scenario.graph.processes}
    faulty = {process: FaultSpec.silent() for process in scenario.faulty}
    config = RunConfig(
        graph=scenario.graph,
        protocol=ProtocolConfig.bft_cupft(),
        faulty=faulty,
        proposals=proposals,
        synchrony=PartialSynchronyModel(gst=20.0, delta=1.0),
        seed=seed,
        horizon=2_000.0,
    )
    return run_consensus(config)


def theorem7_cross_group_schedule(cross_group_delay: float) -> NetworkSchedule:
    """The Theorem 7 adversarial scheduler, as a declarative schedule.

    Every message between the two groups is delayed beyond both groups'
    decision times.  The rules are marked ``adversarial=True``: they delay
    correct→correct traffic far past the declared ``GST + delta``, which is
    admissible in the proof because GST can be arbitrarily large — the
    cross-group messages are simply "still pre-GST" until after both groups
    have decided — but is exactly the contract violation the schedule
    validator exists to catch in ordinary experiments.
    """
    return NetworkSchedule(
        name="theorem7-cross-group",
        rules=(
            DelayRule(src=GROUP_A, dst=GROUP_B, delay=cross_group_delay, adversarial=True),
            DelayRule(src=GROUP_B, dst=GROUP_A, delay=cross_group_delay, adversarial=True),
        ),
    )


def _run_joint_system(seed: int, cross_group_delay: float) -> RunResult:
    scenario = figure_2c()
    proposals = {}
    for process in scenario.graph.processes:
        proposals[process] = "v" if process in GROUP_A else "u"
    config = RunConfig(
        graph=scenario.graph,
        protocol=ProtocolConfig.bft_cupft(),
        faulty={},
        proposals=proposals,
        synchrony=PartialSynchronyModel(gst=20.0, delta=1.0),
        schedule=theorem7_cross_group_schedule(cross_group_delay),
        seed=seed,
        horizon=2_000.0,
    )
    return run_consensus(config)


def run_impossibility_experiment(seed: int = 0, cross_group_delay: float = 1_500.0) -> ImpossibilityOutcome:
    """Replay the three executions of Theorem 7 and report the outcome."""
    execution_a = _run_single_system(figure_2a(), "v", seed)
    execution_b = _run_single_system(figure_2b(), "u", seed)
    execution_ab = _run_joint_system(seed, cross_group_delay)
    return ImpossibilityOutcome(
        execution_a=execution_a,
        execution_b=execution_b,
        execution_ab=execution_ab,
    )


def describe(outcome: ImpossibilityOutcome) -> str:
    """Human-readable description of the three executions (used by the benchmark)."""
    lines = [
        "Theorem 7 (impossibility with unknown fault threshold) -- empirical replay:",
        f"  execution A  (system A, process 4 silent): decisions = {sorted(map(repr, set(outcome.execution_a.decisions.values())))}",
        f"  execution B  (system B, process 5 silent): decisions = {sorted(map(repr, set(outcome.execution_b.decisions.values())))}",
        f"  execution AB (all correct, cross-group messages delayed):",
        f"    group A decided: {sorted(map(repr, {v for p, v in outcome.execution_ab.decisions.items() if p in GROUP_A}))}",
        f"    group B decided: {sorted(map(repr, {v for p, v in outcome.execution_ab.decisions.items() if p in GROUP_B}))}",
        f"    agreement violated: {outcome.ab_agreement_violated}",
        f"  theorem demonstrated: {outcome.demonstrates_theorem}",
    ]
    return "\n".join(lines)
