"""Experiment harness and result analysis.

* :mod:`repro.analysis.harness` -- build a simulation from a knowledge
  connectivity graph, a fault assignment and a protocol configuration, run
  it to completion and collect a :class:`~repro.analysis.harness.RunResult`.
* :mod:`repro.analysis.properties` -- checkers for the four consensus
  properties (Validity, Agreement, Termination, Integrity) plus the
  sink/core identification agreement.
* :mod:`repro.analysis.tables` -- plain-text table rendering used by the
  benchmarks and examples to print the paper's tables/figures.
* :mod:`repro.analysis.table1` -- the Table I possibility-matrix experiment.
* :mod:`repro.analysis.impossibility` -- the Fig. 2 / Theorem 7
  indistinguishability experiment.
"""

from repro.analysis.harness import RunConfig, RunResult, run_consensus
from repro.analysis.properties import ConsensusProperties, check_properties
from repro.analysis.tables import render_table

__all__ = [
    "RunConfig",
    "RunResult",
    "run_consensus",
    "ConsensusProperties",
    "check_properties",
    "render_table",
]
