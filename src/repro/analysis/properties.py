"""Checkers for the consensus properties (Section II-B).

* **Validity** -- if a correct process decides ``v``, then ``v`` was proposed
  by some process.  (The Byzantine form: a value proposed only by faulty
  processes may still be decided, but a value proposed by nobody may not.)
* **Agreement** -- no two correct processes decide differently.
* **Termination** -- every correct process eventually decides (within the
  simulation horizon).
* **Integrity** -- every correct process decides at most once (enforced
  structurally by the node; re-checked from the trace here).

Additionally the harness checks **identification agreement**: every correct
process that returned a sink/core returned the same set, which is the
pivotal intermediate property (its violation is how the Agreement violations
of Section IV manifest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graphs.knowledge_graph import ProcessId


@dataclass(frozen=True)
class ConsensusProperties:
    """Outcome of the property checks for one run."""

    validity: bool
    agreement: bool
    termination: bool
    integrity: bool
    identification_agreement: bool
    decided_values: dict[ProcessId, Any]
    distinct_decided_values: tuple[Any, ...]

    @property
    def consensus_solved(self) -> bool:
        """All four consensus properties held within the horizon."""
        return self.validity and self.agreement and self.termination and self.integrity


def check_properties(
    *,
    correct: frozenset[ProcessId],
    proposals: dict[ProcessId, Any],
    decisions: dict[ProcessId, Any],
    identified: dict[ProcessId, frozenset[ProcessId]],
    decision_counts: dict[ProcessId, int] | None = None,
) -> ConsensusProperties:
    """Evaluate the consensus properties for one run.

    Parameters
    ----------
    correct:
        The correct processes.
    proposals:
        Every process's proposed value (including faulty processes; the
        Byzantine validity notion allows deciding a faulty process's value).
    decisions:
        The value decided by each correct process that decided.
    identified:
        The sink/core returned by each correct process that identified one.
    decision_counts:
        Optional per-process decision counts (for the Integrity check); when
        omitted, Integrity is vacuously true because the node structure
        already prevents double decisions.
    """
    correct_decisions = {process: value for process, value in decisions.items() if process in correct}
    proposed_values = set(proposals.values())

    validity = all(value in proposed_values for value in correct_decisions.values())
    distinct = tuple(sorted({repr(value) for value in correct_decisions.values()}))
    agreement = len({repr(value) for value in correct_decisions.values()}) <= 1
    termination = set(correct_decisions) == set(correct)
    if decision_counts is None:
        integrity = True
    else:
        integrity = all(
            decision_counts.get(process, 0) <= 1 for process in correct
        )
    correct_identifications = {
        process: members for process, members in identified.items() if process in correct
    }
    identification_agreement = len(set(correct_identifications.values())) <= 1

    # Recover the original (non-repr) distinct values for reporting.
    seen: list[Any] = []
    for value in correct_decisions.values():
        if not any(repr(value) == repr(existing) for existing in seen):
            seen.append(value)

    return ConsensusProperties(
        validity=validity,
        agreement=agreement,
        termination=termination,
        integrity=integrity,
        identification_agreement=identification_agreement,
        decided_values=correct_decisions,
        distinct_decided_values=tuple(seen),
    )
