"""Discrete-event simulation substrate.

The paper assumes a partially synchronous message-passing system: there is a
global stabilisation time (GST) and a bound ``δ`` such that messages between
correct processes sent after GST are delivered within ``δ``; before GST
delays are arbitrary.  This package provides a deterministic discrete-event
simulator implementing exactly that abstraction, plus the authenticated
reliable point-to-point channels the protocols rely on.

Main pieces:

* :class:`~repro.sim.engine.Simulator` -- the event loop and virtual clock.
* :class:`~repro.sim.network.Network` -- the partial-synchrony delay model
  (with synchronous and asynchronous variants used by the Table I
  experiment) and the message transport.
* :class:`~repro.sim.process.Process` -- base class for protocol processes
  (message handlers, periodic timers, send primitives).
* :class:`~repro.sim.tracing.SimulationTrace` -- message and decision
  statistics collected during a run.
"""

from repro.sim.engine import Simulator
from repro.sim.messages import Envelope
from repro.sim.network import (
    AsynchronousModel,
    Network,
    PartialSynchronyModel,
    SynchronyModel,
    SynchronousModel,
)
from repro.sim.process import Process
from repro.sim.tracing import SimulationTrace

__all__ = [
    "Simulator",
    "Envelope",
    "Network",
    "SynchronyModel",
    "PartialSynchronyModel",
    "SynchronousModel",
    "AsynchronousModel",
    "Process",
    "SimulationTrace",
]
