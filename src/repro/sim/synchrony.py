"""Synchrony models: the timing assumptions of the system model.

The paper's system model (Section II-A) assumes *partial synchrony*: for
every execution there exist a global stabilisation time (GST) and a bound
``delta`` such that messages between correct processes sent after GST are
delivered within ``delta``; before GST delays are arbitrary (but finite).

:class:`PartialSynchronyModel` implements exactly that contract.  Two
variants are provided for the Table I experiment:

* :class:`SynchronousModel` -- every message (from a correct sender) is
  delivered within ``delta`` from the start of the execution (GST = 0).
* :class:`AsynchronousModel` -- there is no GST: an adversarial scheduler
  may delay any message arbitrarily.  The simulator models "arbitrarily"
  as "beyond the simulation horizon" for a configurable fraction of
  messages, which is how the FLP-style ✗ cells of Table I manifest as
  non-termination within the horizon.

The models are pure strategy objects — a delay distribution consulted per
message — with no knowledge of the transport.  They are shared vocabulary:
scenario builders, analyses and the live runtime all name them, and only
:class:`repro.sim.network.Network` (plus the live transport's shaping
layer) actually calls :meth:`SynchronyModel.delay`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.knowledge_graph import ProcessId


class SynchronyModel:
    """Strategy object deciding the delivery delay of each message."""

    def delay(
        self,
        *,
        now: float,
        sender: ProcessId,
        receiver: ProcessId,
        sender_correct: bool,
        receiver_correct: bool,
        rng: random.Random,
    ) -> float | None:
        """Return the delivery delay, or ``None`` to withhold the message forever."""
        raise NotImplementedError


@dataclass
class SynchronousModel(SynchronyModel):
    """Synchronous system: every message is delivered within ``delta``."""

    delta: float = 1.0
    minimum_delay: float = 0.1

    def delay(self, *, now, sender, receiver, sender_correct, receiver_correct, rng):  # noqa: D102
        del now, sender, receiver, sender_correct, receiver_correct
        return self.minimum_delay + rng.random() * (self.delta - self.minimum_delay)


@dataclass
class PartialSynchronyModel(SynchronyModel):
    """Partially synchronous system with a GST and a post-GST bound ``delta``.

    Before GST, messages between correct processes are delayed by a value
    drawn from ``[minimum_delay, pre_gst_max_delay]``, but never beyond
    ``GST + delta`` (the classical presentation: every message sent before
    GST is delivered by ``GST + delta``).  After GST, delays fall in
    ``[minimum_delay, delta]``.
    """

    gst: float = 50.0
    delta: float = 1.0
    minimum_delay: float = 0.1
    pre_gst_max_delay: float = 200.0

    def delay(self, *, now, sender, receiver, sender_correct, receiver_correct, rng):  # noqa: D102
        del sender, receiver, sender_correct, receiver_correct
        if now >= self.gst:
            return self.minimum_delay + rng.random() * max(self.delta - self.minimum_delay, 0.0)
        raw = self.minimum_delay + rng.random() * max(self.pre_gst_max_delay - self.minimum_delay, 0.0)
        deliver_at = min(now + raw, self.gst + self.delta)
        return max(deliver_at - now, self.minimum_delay)


@dataclass
class AsynchronousModel(SynchronyModel):
    """Asynchronous system: no GST; some messages can be delayed unboundedly.

    ``starvation_probability`` is the chance that a given message is delayed
    past the simulation horizon (modelling the adversarial scheduler that
    FLP-style impossibility arguments rely on); ``targeted_links`` can pin
    the starvation to specific (sender, receiver) pairs, which the Table I
    experiment uses to starve exactly the messages whose loss prevents
    termination.
    """

    delta: float = 1.0
    minimum_delay: float = 0.1
    starvation_probability: float = 0.05
    horizon: float = 1_000_000.0
    targeted_links: frozenset[tuple[ProcessId, ProcessId]] = frozenset()

    def delay(self, *, now, sender, receiver, sender_correct, receiver_correct, rng):  # noqa: D102
        del now, sender_correct, receiver_correct
        if (sender, receiver) in self.targeted_links:
            return None
        if self.starvation_probability > 0 and rng.random() < self.starvation_probability:
            return None
        return self.minimum_delay + rng.random() * max(self.delta - self.minimum_delay, 0.0)


__all__ = [
    "AsynchronousModel",
    "PartialSynchronyModel",
    "SynchronousModel",
    "SynchronyModel",
]
