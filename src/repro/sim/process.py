"""Base class for protocol processes.

A :class:`Process` owns a process identifier, its participant detector, a
reference to the :class:`~repro.runtime.base.Runtime` it executes on, and a
small dispatch layer: message handlers by payload type, periodic timers, and
one-shot timers.  Protocol modules subclass it (or compose it) and register
handlers with :meth:`on`.

Processes are runtime-agnostic: the same handler code runs under the
discrete-event simulator (:class:`~repro.runtime.sim.SimRuntime`) and over
real sockets (:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime`).  The
historical ``Process(pid, pd, simulator, network)`` construction is kept —
it wraps the pair into a :class:`~repro.runtime.sim.SimRuntime` — so
sim-only code and tests read exactly as before.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

from repro.graphs.knowledge_graph import ProcessId
from repro.sim.engine import Simulator
from repro.sim.messages import Envelope
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime, TimerHandle


class PeriodicTimer:
    """Cancellable handle for a repeating timer created by :meth:`Process.every`.

    The underlying runtime timer changes on every tick, so a plain one-shot
    handle cannot represent the timer; this handle always points at the
    *current* tick and cancelling it both cancels that tick and stops the
    rescheduling loop.
    """

    __slots__ = ("_owner", "_period", "_callback", "_label", "_handle", "_cancelled")

    def __init__(
        self, owner: "Process", period: float, callback: Callable[[], None], label: str
    ) -> None:
        self._owner = owner
        self._period = period
        self._callback = callback
        self._label = label
        self._cancelled = False
        self._handle = owner.runtime.schedule(period, self._tick, label)

    def _tick(self) -> None:
        if self._cancelled or self._owner.stopped:
            return
        self._callback()
        if self._cancelled or self._owner.stopped:
            return  # the callback cancelled the timer (or stopped the process)
        self._handle = self._owner.runtime.schedule(self._period, self._tick, self._label)

    def cancel(self) -> None:
        """Stop the timer: cancel the pending tick and never reschedule."""
        if self._cancelled:
            return
        self._cancelled = True
        self._handle.cancel()
        self._owner._timers.discard(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Process:
    """A protocol process attached to a runtime."""

    def __init__(
        self,
        process_id: ProcessId,
        participant_detector: Iterable[ProcessId],
        simulator: Simulator | None = None,
        network: Network | None = None,
        *,
        runtime: "Runtime | None" = None,
    ) -> None:
        if runtime is None:
            if simulator is None or network is None:
                raise TypeError("Process needs either runtime= or a (simulator, network) pair")
            from repro.runtime.sim import SimRuntime  # lint: allow[SEAM-IMPORT] legacy ctor bridge: deferred import keeps the module graph acyclic

            runtime = SimRuntime(simulator, network)
        self.process_id = process_id
        self.participant_detector = frozenset(participant_detector)
        self.runtime = runtime
        #: The underlying sim objects when running under the discrete-event
        #: engine; ``None`` on live runtimes.  Protocol code must not depend
        #: on them — they exist for sim-only tooling and tests.
        self.simulator = runtime.simulator
        self.network = runtime.network
        self._handlers: dict[type, Callable[[ProcessId, Any], None]] = {}
        self._timers: set["TimerHandle | PeriodicTimer"] = set()
        self._stopped = False
        runtime.register(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the process (protocols override this to kick off tasks)."""

    def stop(self) -> None:
        """Stop taking steps (cancels every pending timer)."""
        self._stopped = True
        for handle in tuple(self._timers):
            handle.cancel()
        self._timers.clear()

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def now(self) -> float:
        """Current protocol time (virtual, or scaled wall clock when live)."""
        return self.runtime.now

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, receiver: ProcessId, payload: Any) -> None:
        """Send ``payload`` to ``receiver`` over the authenticated channel."""
        if self._stopped:
            return
        self.runtime.send(self.process_id, receiver, payload)

    def send_to_all(self, receivers: Iterable[ProcessId], payload: Any) -> None:
        """Send ``payload`` to every process in ``receivers`` (excluding self)."""
        for receiver in sorted(set(receivers), key=repr):
            if receiver != self.process_id:
                self.send(receiver, payload)

    def on(self, payload_type: type, handler: Callable[[ProcessId, Any], None]) -> None:
        """Register ``handler(sender, payload)`` for payloads of ``payload_type``."""
        self._handlers[payload_type] = handler

    def receive(self, envelope: Envelope) -> None:
        """Entry point called by the runtime when a message is delivered."""
        if self._stopped:
            return
        handler = self._handlers.get(type(envelope.payload))
        if handler is None:
            self.on_unhandled(envelope)
            return
        handler(envelope.sender, envelope.payload)

    def on_unhandled(self, envelope: Envelope) -> None:
        """Hook for payloads without a registered handler (default: ignore)."""

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def after(self, delay: float, callback: Callable[[], None], label: str = "") -> "TimerHandle":
        """Run ``callback`` once, ``delay`` time units from now.

        Fired handles are pruned from the process's timer registry, so
        long-lived processes scheduling many one-shots (PBFT view timers,
        re-requests) do not accumulate dead handles.
        """
        handle: "TimerHandle"

        def guarded() -> None:
            self._timers.discard(handle)
            if not self._stopped:
                callback()

        # Static default label: formatting the process id on every one-shot
        # is measurable at large n and the label is only read when debugging.
        handle = self.runtime.schedule(delay, guarded, label or "one-shot")
        self._timers.add(handle)
        return handle

    def every(self, period: float, callback: Callable[[], None], label: str = "") -> PeriodicTimer:
        """Run ``callback`` every ``period`` time units until cancelled.

        Returns a :class:`PeriodicTimer`; cancelling it stops the ticks for
        good (:meth:`stop` cancels every outstanding timer as before).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        timer = PeriodicTimer(self, period, callback, label or "periodic")
        self._timers.add(timer)
        return timer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.process_id!r})"
