"""The discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of events.
Each event is a callback scheduled at a virtual time; ties are broken by a
monotonically increasing sequence number so execution is fully
deterministic.  The engine knows nothing about processes or networks -- it
only runs callbacks in time order -- which keeps it reusable for the
protocol stack, the PBFT substrate and the baselines alike.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


class SimulationLimitExceeded(RuntimeError):
    """Raised when a run exceeds its configured time or event budget."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set once the event has been popped from the queue (executed or
    #: discarded), so late ``cancel()`` calls do not skew the counter of
    #: cancelled-but-still-queued events.
    done: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, allowing cancellation."""

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _ScheduledEvent, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        """Cancel the event (no-op if it already ran)."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._simulator._on_cancelled()

    @property
    def time(self) -> float:
        """The virtual time at which the event is scheduled."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Parameters
    ----------
    max_time:
        Hard limit on the virtual clock; :meth:`run` stops (or raises,
        depending on ``raise_on_limit``) when it is reached.  This is the
        simulation horizon: protocols that have not terminated by then are
        reported as non-terminating, which is how the impossibility
        experiments detect stalls.
    max_events:
        Hard limit on the number of processed events (guards against
        livelock in buggy protocols or adversarial schedules).
    """

    #: Queues shorter than this are never compacted: rebuilding a tiny heap
    #: costs more than carrying its dead entries.
    COMPACTION_MIN_QUEUE = 64

    def __init__(self, max_time: float = 1_000_000.0, max_events: int = 5_000_000) -> None:
        self.max_time = max_time
        self.max_events = max_events
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed_events = 0
        self._stopped = False
        self._cancelled_in_queue = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed_events

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = _ScheduledEvent(time=time, sequence=next(self._sequence), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def stop(self) -> None:
        """Stop the run after the current event finishes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _on_cancelled(self) -> None:
        """Account for a cancellation and compact the heap when it is mostly dead.

        Long adversarial runs cancel many timers (view changes, discovery
        re-requests); without compaction those dead entries stay in the heap
        until their virtual deadline, inflating both memory and the cost of
        every push/pop.  Once more than half the queue is cancelled the live
        events are rebuilt into a fresh heap, which is amortised O(1) per
        cancellation.
        """
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and 2 * self._cancelled_in_queue >= len(self._queue)
        ):
            for event in self._queue:
                if event.cancelled:
                    event.done = True
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (for tests and diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` when none is left."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                event.done = True
                self._cancelled_in_queue -= 1
                continue
            if event.time > self.max_time:
                event.done = True
                return False
            event.done = True
            self._now = event.time
            self._processed_events += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Callable[[], bool] | None = None,
        *,
        raise_on_limit: bool = False,
    ) -> bool:
        """Run events until ``until()`` is true, the queue drains, or a limit hits.

        Returns ``True`` when ``until`` became true (or the queue drained
        with no predicate given), ``False`` when a limit was reached first.
        """
        self._stopped = False
        while True:
            if until is not None and until():
                return True
            if self._stopped:
                return until() if until is not None else True
            if self._processed_events >= self.max_events:
                if raise_on_limit:
                    raise SimulationLimitExceeded(
                        f"event budget exhausted ({self.max_events} events)"
                    )
                return False
            if not self.step():
                # Queue drained or horizon reached.
                if until is None:
                    return True
                satisfied = until()
                if not satisfied and raise_on_limit:
                    raise SimulationLimitExceeded(
                        f"virtual-time horizon reached at t={self._now} without satisfying the predicate"
                    )
                return satisfied

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): the queue tracks how many of its entries are cancelled
        placeholders awaiting compaction.
        """
        return len(self._queue) - self._cancelled_in_queue
