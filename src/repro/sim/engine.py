"""The discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of events.
Each event is a callback scheduled at a virtual time; ties are broken by a
monotonically increasing sequence number so execution is fully
deterministic.  The engine knows nothing about processes or networks -- it
only runs callbacks in time order -- which keeps it reusable for the
protocol stack, the PBFT substrate and the baselines alike.

Two representations share the heap, both stored as ``(time, sequence,
item)`` tuples so comparisons never touch the payload:

* :class:`_ScheduledEvent` -- one callback, the general case;
* :class:`_EventBatch` -- many payloads delivered through one shared
  callable at one instant (same-tick network deliveries).  A batch occupies
  a single heap entry no matter how many payloads it carries, which is the
  engine-side half of scaling broadcast-heavy runs to large graphs: a
  10k-node broadcast is one heap push instead of 10k.

Batches preserve execution order *exactly*.  A payload may only be appended
to a batch while the batch's *fence* holds -- no event has been scheduled
since the batch was created -- which guarantees no other event can exist at
the batch's instant with a later sequence number, so the appended payload
runs precisely where a per-payload event would have.  :meth:`Simulator.step`
still executes one payload per call, so stop-predicates, event budgets and
the processed-event count behave identically to the unbatched engine.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any


class SimulationLimitExceeded(RuntimeError):
    """Raised when a run exceeds its configured time or event budget."""


class _ScheduledEvent:
    """A single scheduled callback (heap payload; ordering lives in the tuple)."""

    __slots__ = ("time", "callback", "cancelled", "done", "label")

    def __init__(self, time: float, callback: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        #: Set once the event has been popped from the queue (executed or
        #: discarded), so late ``cancel()`` calls do not skew the counter of
        #: cancelled-but-still-queued events.
        self.done = False
        self.label = label


class _EventBatch:
    """Many same-instant payloads behind one heap entry.

    ``fn`` is invoked once per payload, one payload per :meth:`Simulator.step`
    call.  ``fence`` snapshots the simulator's sequence counter at creation:
    appends are only legal while the counter is unchanged (see module
    docstring), and ``closed`` is set once the last payload ran so a batch
    that left the queue can never silently swallow a new payload.
    """

    __slots__ = ("time", "fn", "items", "next_index", "fence", "closed", "label")

    def __init__(self, time: float, fn: Callable[[Any], None], first_item: Any, fence: int, label: str = "") -> None:
        self.time = time
        self.fn = fn
        self.items = [first_item]
        self.next_index = 0
        self.fence = fence
        self.closed = False
        self.label = label


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, allowing cancellation."""

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _ScheduledEvent, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        """Cancel the event (no-op if it already ran)."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._simulator._on_cancelled()

    @property
    def time(self) -> float:
        """The virtual time at which the event is scheduled."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Parameters
    ----------
    max_time:
        Hard limit on the virtual clock; :meth:`run` stops (or raises,
        depending on ``raise_on_limit``) when it is reached.  This is the
        simulation horizon: protocols that have not terminated by then are
        reported as non-terminating, which is how the impossibility
        experiments detect stalls.
    max_events:
        Hard limit on the number of processed events (guards against
        livelock in buggy protocols or adversarial schedules).
    compaction_min_queue:
        Queues shorter than this are never compacted (rebuilding a tiny
        heap costs more than carrying its dead entries).  Defaults to
        :data:`Simulator.COMPACTION_MIN_QUEUE`; large-n runs that cancel
        many timers may prefer a larger value to compact less often.  The
        setting only trades memory against heap traffic -- trajectories are
        identical for every value, which ``tests/sim/test_engine.py``
        pins.
    """

    #: Default for ``compaction_min_queue``.
    COMPACTION_MIN_QUEUE = 64

    def __init__(
        self,
        max_time: float = 1_000_000.0,
        max_events: int = 5_000_000,
        compaction_min_queue: int | None = None,
    ) -> None:
        self.max_time = max_time
        self.max_events = max_events
        self.compaction_min_queue = (
            self.COMPACTION_MIN_QUEUE if compaction_min_queue is None else compaction_min_queue
        )
        self._queue: list[tuple[float, int, _ScheduledEvent | _EventBatch]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed_events = 0
        self._stopped = False
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._queued_batches = 0
        self._pending_batch_items = 0
        self._active_batch: _EventBatch | None = None
        self._pending_peak = 0

    # ------------------------------------------------------------------
    # clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (batch payloads count one each)."""
        return self._processed_events

    @property
    def pending_peak(self) -> int:
        """High-water mark of :meth:`pending_events` over the run."""
        return self._pending_peak

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = _ScheduledEvent(time, callback, label)
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, event))
        pending = self.pending_events()
        if pending > self._pending_peak:
            self._pending_peak = pending
        return EventHandle(event, self)

    def schedule_batch_at(
        self, time: float, fn: Callable[[Any], None], first_item: Any, label: str = ""
    ) -> _EventBatch:
        """Open a new batch at ``time`` seeded with ``first_item``.

        Further payloads join via :meth:`try_append_to_batch` while the
        batch's fence holds.  Batches cannot be cancelled (network
        deliveries never are).
        """
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._sequence += 1
        batch = _EventBatch(time, fn, first_item, fence=self._sequence, label=label)
        heapq.heappush(self._queue, (time, self._sequence, batch))
        self._queued_batches += 1
        self._pending_batch_items += 1
        pending = self.pending_events()
        if pending > self._pending_peak:
            self._pending_peak = pending
        return batch

    def try_append_to_batch(self, batch: _EventBatch, item: Any) -> bool:
        """Append ``item`` to ``batch`` iff execution order is provably preserved.

        Succeeds only while nothing has been scheduled since the batch was
        created (``fence`` intact) and the batch has not finished draining.
        Under the fence no event can exist at the batch's instant with a
        later sequence number, so the appended payload runs exactly where a
        freshly scheduled per-payload event would have run.  Appends do not
        advance the sequence counter -- they create no heap entry -- so a
        run of same-instant deliveries keeps one fence alive.
        """
        if batch.closed or batch.fence != self._sequence:
            return False
        batch.items.append(item)
        self._pending_batch_items += 1
        pending = self.pending_events()
        if pending > self._pending_peak:
            self._pending_peak = pending
        return True

    def stop(self) -> None:
        """Stop the run after the current event finishes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _on_cancelled(self) -> None:
        """Account for a cancellation and compact the heap when it is mostly dead.

        Long adversarial runs cancel many timers (view changes, discovery
        re-requests); without compaction those dead entries stay in the heap
        until their virtual deadline, inflating both memory and the cost of
        every push/pop.  Once more than half the queue is cancelled the live
        events are rebuilt into a fresh heap, which is amortised O(1) per
        cancellation.
        """
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.compaction_min_queue
            and 2 * self._cancelled_in_queue >= len(self._queue)
        ):
            for _, _, item in self._queue:
                if type(item) is _ScheduledEvent and item.cancelled:
                    item.done = True
            self._queue = [
                entry
                for entry in self._queue
                if type(entry[2]) is _EventBatch or not entry[2].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (for tests and diagnostics)."""
        return self._compactions

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` when none is left.

        One batch payload counts as one event: an active batch is drained
        across as many ``step()`` calls as it has payloads, so callers that
        interleave checks between events (stop predicates, budgets) observe
        the exact behaviour of the unbatched engine.
        """
        batch = self._active_batch
        if batch is not None:
            return self._step_batch_item(batch)
        while self._queue:
            time, _, item = heapq.heappop(self._queue)
            if type(item) is _EventBatch:
                self._queued_batches -= 1
                self._active_batch = item
                return self._step_batch_item(item)
            if item.cancelled:
                item.done = True
                self._cancelled_in_queue -= 1
                continue
            if time > self.max_time:
                item.done = True
                return False
            item.done = True
            self._now = time
            self._processed_events += 1
            item.callback()
            return True
        return False

    def _step_batch_item(self, batch: _EventBatch) -> bool:
        if batch.time > self.max_time:
            # Mirror the unbatched engine: each step discards exactly one
            # overdue delivery and reports the horizon.
            batch.next_index += 1
            self._pending_batch_items -= 1
            if batch.next_index >= len(batch.items):
                batch.closed = True
                self._active_batch = None
            return False
        item = batch.items[batch.next_index]
        batch.next_index += 1
        self._pending_batch_items -= 1
        self._now = batch.time
        self._processed_events += 1
        batch.fn(item)
        # Checked after fn(): a handler may legally append to this batch
        # while the fence still holds, re-opening the tail.
        if batch.next_index >= len(batch.items):
            batch.closed = True
            self._active_batch = None
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        *,
        raise_on_limit: bool = False,
    ) -> bool:
        """Run events until ``until()`` is true, the queue drains, or a limit hits.

        Returns ``True`` when ``until`` became true (or the queue drained
        with no predicate given), ``False`` when a limit was reached first.
        """
        self._stopped = False
        while True:
            if until is not None and until():
                return True
            if self._stopped:
                return until() if until is not None else True
            if self._processed_events >= self.max_events:
                if raise_on_limit:
                    raise SimulationLimitExceeded(
                        f"event budget exhausted ({self.max_events} events)"
                    )
                return False
            if not self.step():
                # Queue drained or horizon reached.
                if until is None:
                    return True
                satisfied = until()
                if not satisfied and raise_on_limit:
                    raise SimulationLimitExceeded(
                        f"virtual-time horizon reached at t={self._now} without satisfying the predicate"
                    )
                return satisfied

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): the queue tracks how many of its entries are cancelled
        placeholders awaiting compaction, and how many payloads its batch
        entries (plus the batch currently draining) still carry.
        """
        return (
            len(self._queue)
            - self._cancelled_in_queue
            - self._queued_batches
            + self._pending_batch_items
        )
