"""Message envelopes exchanged through the simulated network.

Protocol payloads are ordinary Python objects (dataclasses defined by each
protocol module); the network wraps them in an :class:`Envelope` carrying
the sender, the receiver and bookkeeping metadata used by the tracing
subsystem.  The envelope also carries the *claimed* sender identity
separately from the authenticated channel identity so tests can exercise
impersonation attempts (which authenticated channels must reject).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.knowledge_graph import ProcessId


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight between two processes."""

    sender: ProcessId
    receiver: ProcessId
    payload: Any
    sent_at: float
    kind: str = field(default="")

    def describe(self) -> str:
        """Short human-readable description (used in traces and debugging)."""
        kind = self.kind or type(self.payload).__name__
        return f"{self.sender!r} -> {self.receiver!r}: {kind}"


def payload_kind(payload: Any) -> str:
    """Return a stable short name for a payload (its class name)."""
    return type(payload).__name__
