"""Message transport: reliable authenticated channels over a synchrony model.

The timing assumptions themselves (synchronous / partially synchronous /
asynchronous delay strategies) live in :mod:`repro.sim.synchrony`; they are
re-exported here for backwards compatibility.

The :class:`Network` combines a synchrony model with the authenticated
reliable point-to-point channel assumption: messages are never lost,
duplicated, or forged (an envelope's sender is set by the transport, not by
the caller), but Byzantine-controlled *senders* may of course put arbitrary
payloads inside.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.graphs.knowledge_graph import ProcessId
from repro.sim.engine import Simulator, _EventBatch
from repro.sim.messages import Envelope, payload_kind
from repro.sim.synchrony import (
    AsynchronousModel,
    PartialSynchronyModel,
    SynchronousModel,
    SynchronyModel,
)
from repro.sim.tracing import SimulationTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.process import Process


class _Withhold:
    """Sentinel decision: the matched message is never delivered."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WITHHOLD"


#: Returned by :meth:`NetworkRule.decide` to drop the message forever.
WITHHOLD = _Withhold()


class NetworkRule:
    """One named, ordered message-scheduling rule.

    Rules form the first-class adversarial-scheduling path of the
    :class:`Network`: they are consulted in installation order for every
    sent message, and the *first* rule returning a decision wins.  A
    decision is either a delivery delay (a float), :data:`WITHHOLD` (the
    message is dropped forever), or ``None`` (no match; the next rule, and
    ultimately the synchrony model, decides).

    The rule ``name`` appears verbatim in the
    :class:`~repro.sim.tracing.SimulationTrace` drop/delay reasons, so a
    trace always says *which* scripted fault touched a message — unlike the
    opaque delay-override closures this engine replaces.
    """

    name: str = "rule"

    def decide(self, envelope: Envelope, *, now: float) -> float | _Withhold | None:
        """Return a delay, :data:`WITHHOLD`, or ``None`` when not matching."""
        raise NotImplementedError


class _CallableRule(NetworkRule):
    """Adapter keeping the legacy delay-override closures working.

    The historical override contract cannot withhold: the closure returns a
    delay to apply or ``None`` to fall through, which maps exactly onto the
    rule engine's "no match" decision.
    """

    def __init__(self, name: str, fn: Callable[[Envelope], float | None]) -> None:
        self.name = name
        self._fn = fn

    def decide(self, envelope: Envelope, *, now: float) -> float | None:
        del now
        return self._fn(envelope)


class Network:
    """Authenticated reliable point-to-point transport over a synchrony model.

    Processes register themselves with :meth:`register`.  Sending is done
    through :meth:`send`, which stamps the true sender identity on the
    envelope (the authenticated channel assumption: a Byzantine process
    cannot impersonate another process at the transport level, although it
    can sign bogus *payload* claims, which the crypto layer handles).

    Crashed processes can be marked with :meth:`crash`; messages to or from
    a crashed process are dropped, matching the standard "a crashed process
    stops executing any step" semantics used by the impossibility proof.
    """

    def __init__(
        self,
        simulator: Simulator,
        model: SynchronyModel,
        *,
        trace: SimulationTrace | None = None,
        seed: int = 0,
        faulty: frozenset[ProcessId] = frozenset(),
    ) -> None:
        self.simulator = simulator
        self.model = model
        self.trace = trace if trace is not None else SimulationTrace()
        self.rng = random.Random(seed)
        self.faulty = frozenset(faulty)
        self._processes: dict[ProcessId, "Process"] = {}
        self._crashed: set[ProcessId] = set()
        self._rules: list[NetworkRule] = []
        #: The most recently created delivery batch.  Same-instant
        #: deliveries (broadcast fan-out, pre-GST clamping to
        #: ``GST + delta``, constant-delay schedule rules) share one heap
        #: entry as long as the engine can prove order preservation (see
        #: :meth:`Simulator.try_append_to_batch`); older batches can never
        #: accept appends again, so one slot suffices.
        self._last_batch: _EventBatch | None = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        """Register a process so it can receive messages."""
        if process.process_id in self._processes:
            raise ValueError(f"process {process.process_id!r} already registered")
        self._processes[process.process_id] = process

    def process(self, process_id: ProcessId) -> "Process":
        """Return the registered process object for ``process_id``."""
        return self._processes[process_id]

    @property
    def process_ids(self) -> frozenset[ProcessId]:
        return frozenset(self._processes)

    def is_correct(self, process_id: ProcessId) -> bool:
        """A process is correct when it is neither Byzantine nor crashed."""
        return process_id not in self.faulty and process_id not in self._crashed

    def crash(self, process_id: ProcessId) -> None:
        """Crash a process: it stops taking steps and its messages are dropped."""
        self._crashed.add(process_id)

    @property
    def crashed(self) -> frozenset[ProcessId]:
        return frozenset(self._crashed)

    # ------------------------------------------------------------------
    # adversarial scheduling hooks
    # ------------------------------------------------------------------
    def add_rule(self, rule: NetworkRule) -> None:
        """Install a named message-scheduling rule (consulted in order).

        The first installed rule whose :meth:`NetworkRule.decide` returns a
        decision wins; the synchrony model only schedules messages no rule
        claims.  Declarative :class:`~repro.adversary.schedule.NetworkSchedule`
        objects compile onto this hook; rules only *increase* adversarial
        power for messages involving faulty processes or pre-GST traffic
        (the schedule layer validates that contract against the model).
        """
        self._rules.append(rule)

    @property
    def rules(self) -> tuple[NetworkRule, ...]:
        """The installed scheduling rules, in consultation order."""
        return tuple(self._rules)

    def add_delay_override(self, override: Callable[[Envelope], float | None]) -> None:
        """Install an adversarial per-message delay override (legacy API).

        The override receives the envelope and returns a delay (overriding
        the synchrony model) or ``None`` to fall through to the next rule or
        to the model.  Overrides are wrapped into anonymous
        :class:`NetworkRule` instances; prefer :meth:`add_rule` (or a
        declarative schedule), which names the rule in trace reasons.
        """
        self.add_rule(_CallableRule(f"override#{len(self._rules)}", override))

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, sender: ProcessId, receiver: ProcessId, payload: object) -> None:
        """Send ``payload`` from ``sender`` to ``receiver`` over the channel."""
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=self.simulator.now,
            kind=payload_kind(payload),
        )
        self.trace.on_send(envelope)

        if sender in self._crashed:
            self.trace.on_drop(envelope, "sender crashed")
            return
        if receiver not in self._processes:
            self.trace.on_drop(envelope, "unknown receiver")
            return

        delay: float | None = None
        matched: NetworkRule | None = None
        decision: float | _Withhold | None = None
        for rule in self._rules:
            decision = rule.decide(envelope, now=self.simulator.now)
            if decision is not None:
                matched = rule
                break
        if matched is None:
            delay = self.model.delay(
                now=self.simulator.now,
                sender=sender,
                receiver=receiver,
                sender_correct=self.is_correct(sender),
                receiver_correct=self.is_correct(receiver),
                rng=self.rng,
            )
            if delay is None:
                self.trace.on_drop(envelope, "withheld by scheduler")
                return
        elif isinstance(decision, _Withhold):
            self.trace.on_rule_drop(envelope, matched.name)
            return
        else:
            delay = float(decision)
            self.trace.on_rule_delay(envelope, matched.name, delay)

        self._schedule_delivery(envelope, delay)

    def _schedule_delivery(self, envelope: Envelope, delay: float) -> None:
        """Queue ``envelope`` for delivery ``delay`` from now, batching same-tick sends.

        The envelope joins the open batch for its delivery instant when the
        engine can prove the batched order matches per-message scheduling;
        otherwise it opens a new batch (one heap entry either way).  The
        crashed-receiver check stays at delivery time, exactly as before.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        simulator = self.simulator
        time = simulator.now + delay
        # Only the most recently created batch can still accept appends: the
        # fence check requires that nothing was scheduled since the batch was
        # created, and creating any newer batch (or event) breaks every older
        # fence.  A single-slot cache therefore captures every batchable send
        # with O(1) bookkeeping and nothing to prune.
        batch = self._last_batch
        if (
            batch is not None
            and batch.time == time
            and simulator.try_append_to_batch(batch, envelope)
        ):
            return
        self._last_batch = simulator.schedule_batch_at(
            time, self._deliver_one, envelope, label="deliver batch"
        )

    def _deliver_one(self, envelope: Envelope) -> None:
        receiver = envelope.receiver
        if receiver in self._crashed:
            self.trace.on_drop(envelope, "receiver crashed")
            return
        self.trace.on_deliver(envelope)
        self._processes[receiver].receive(envelope)

    def broadcast(self, sender: ProcessId, receivers: frozenset[ProcessId], payload: object) -> None:
        """Send ``payload`` from ``sender`` to every process in ``receivers``."""
        for receiver in sorted(receivers, key=repr):
            if receiver != sender:
                self.send(sender, receiver, payload)


__all__ = [
    "WITHHOLD",
    "AsynchronousModel",
    "Network",
    "NetworkRule",
    "PartialSynchronyModel",
    "SynchronousModel",
    "SynchronyModel",
]
