"""Tracing and statistics for simulation runs.

The experiment harness reports, for every run, the message complexity
(total messages, messages per payload type), the virtual time of every
decision, and whether the consensus properties held.  The
:class:`SimulationTrace` collects the raw material for those reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.graphs.knowledge_graph import ProcessId
from repro.sim.messages import Envelope


@dataclass
class SimulationTrace:
    """Accumulates network and protocol events during a run."""

    record_messages: bool = False
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    sent_by_kind: Counter = field(default_factory=Counter)
    sent_by_process: Counter = field(default_factory=Counter)
    delivered_by_kind: Counter = field(default_factory=Counter)
    #: Per-rule tallies of messages withheld/delayed by named scheduling
    #: rules (the declarative fault-schedule path of the network).
    dropped_by_rule: Counter = field(default_factory=Counter)
    delayed_by_rule: Counter = field(default_factory=Counter)
    decisions: dict[ProcessId, tuple[Any, float]] = field(default_factory=dict)
    sink_returns: dict[ProcessId, tuple[frozenset[ProcessId], float]] = field(default_factory=dict)
    events: list[tuple[float, str]] = field(default_factory=list)
    message_log: list[Envelope] = field(default_factory=list)

    # ------------------------------------------------------------------
    # network hooks
    # ------------------------------------------------------------------
    def on_send(self, envelope: Envelope) -> None:
        self.messages_sent += 1
        self.sent_by_kind[envelope.kind] += 1
        self.sent_by_process[envelope.sender] += 1
        if self.record_messages:
            self.message_log.append(envelope)

    def on_deliver(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
        self.delivered_by_kind[envelope.kind] += 1

    def on_drop(self, envelope: Envelope, reason: str) -> None:
        self.messages_dropped += 1
        if self.record_messages:
            self.events.append((0.0, f"drop ({reason}): {envelope.describe()}"))

    def on_rule_drop(self, envelope: Envelope, rule: str) -> None:
        """A named scheduling rule withheld the message forever."""
        self.dropped_by_rule[rule] += 1
        self.on_drop(envelope, f"withheld by rule {rule!r}")

    def on_rule_delay(self, envelope: Envelope, rule: str, delay: float) -> None:
        """A named scheduling rule overrode the synchrony model's delay."""
        self.delayed_by_rule[rule] += 1
        if self.record_messages:
            self.events.append(
                (0.0, f"delay (rule {rule!r}, {delay:g}): {envelope.describe()}")
            )

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def on_decision(self, process: ProcessId, value: Any, time: float) -> None:
        """Record the first decision of ``process`` (Integrity is checked elsewhere)."""
        if process not in self.decisions:
            self.decisions[process] = (value, time)

    def on_sink_identified(self, process: ProcessId, members: frozenset[ProcessId], time: float) -> None:
        """Record the sink/core returned by ``process``."""
        if process not in self.sink_returns:
            self.sink_returns[process] = (members, time)

    def note(self, time: float, message: str) -> None:
        """Record a free-form protocol event."""
        self.events.append((time, message))

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def decided_values(self) -> dict[ProcessId, Any]:
        """Mapping process -> decided value."""
        return {process: value for process, (value, _time) in self.decisions.items()}

    def decision_times(self) -> dict[ProcessId, float]:
        """Mapping process -> virtual time of its decision."""
        return {process: time for process, (_value, time) in self.decisions.items()}

    def latest_decision_time(self) -> float | None:
        """The virtual time at which the last recorded decision happened."""
        times = [time for _value, time in self.decisions.values()]
        return max(times) if times else None

    def summary(self) -> dict[str, Any]:
        """A compact dictionary summary (used by benchmarks and examples)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_by_kind": dict(self.sent_by_kind),
            "decisions": {repr(k): v for k, (v, _t) in self.decisions.items()},
            "latest_decision_time": self.latest_decision_time(),
        }
