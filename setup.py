"""Setuptools entry point.

The project metadata lives in ``setup.cfg``.  A classic ``setup.py`` is kept
(instead of a PEP 517 ``pyproject.toml``) so that ``pip install -e .`` works
in fully offline environments that lack the ``wheel`` package needed for
PEP 660 editable installs.
"""

from setuptools import setup

setup()
